// Shared multi-ISA kernel implementation.  Included (never compiled on its
// own) by kernels_scalar.cpp / kernels_base.cpp / kernels_avx2.cpp with:
//
//   SIGRT_KIMPL_NS     namespace for this instantiation (scalar/sse2/...)
//   SIGRT_KIMPL_LEVEL  0 = scalar, 1 = SSE2, 2 = AVX2+FMA, 3 = NEON (A64)
//   SIGRT_KIMPL_ISA    the support::simd::Isa enumerator to stamp the table
//
// Every vector path loads/stores unaligned, reads no byte outside the spans
// its contract allows (audited per load below), and finishes with the scalar
// tail loop, so span boundaries can be arbitrary.
#ifndef SIGRT_KIMPL_NS
#error "kernels_impl.inl must be included with SIGRT_KIMPL_NS defined"
#endif

#include <cmath>
#include <cstring>

#include "apps/kernels.hpp"

#if SIGRT_KIMPL_LEVEL == 1 || SIGRT_KIMPL_LEVEL == 2
#include <immintrin.h>
#elif SIGRT_KIMPL_LEVEL == 3
#include <arm_neon.h>
#endif

namespace sigrt::apps::kern {
namespace SIGRT_KIMPL_NS {
namespace {

// --- scalar building blocks (used by every level for tails) ---------------

inline int sbl_x(const std::uint8_t* img, std::size_t w, std::size_t y,
                 std::size_t x) {
  return img[(y - 1) * w + x - 1] + 2 * img[y * w + x - 1] +
         img[(y + 1) * w + x - 1] - img[(y - 1) * w + x + 1] -
         2 * img[y * w + x + 1] - img[(y + 1) * w + x + 1];
}

inline int sbl_y(const std::uint8_t* img, std::size_t w, std::size_t y,
                 std::size_t x) {
  return img[(y - 1) * w + x - 1] + 2 * img[(y - 1) * w + x] +
         img[(y - 1) * w + x + 1] - img[(y + 1) * w + x - 1] -
         2 * img[(y + 1) * w + x] - img[(y + 1) * w + x + 1];
}

inline int sbl_x_appr(const std::uint8_t* img, std::size_t w, std::size_t y,
                      std::size_t x) {
  return 2 * img[y * w + x - 1] + img[(y + 1) * w + x - 1] -
         2 * img[y * w + x + 1] - img[(y + 1) * w + x + 1];
}

inline int sbl_y_appr(const std::uint8_t* img, std::size_t w, std::size_t y,
                      std::size_t x) {
  return 2 * img[(y - 1) * w + x] + img[(y - 1) * w + x + 1] -
         2 * img[(y + 1) * w + x] - img[(y + 1) * w + x + 1];
}

inline std::uint8_t sobel_accurate_pixel(const std::uint8_t* img,
                                         std::size_t w, std::size_t y,
                                         std::size_t x) {
  const int sx = sbl_x(img, w, y, x);
  const int sy = sbl_y(img, w, y, x);
  // float sqrt: |sx|,|sy| <= 1020, so sx^2+sy^2 < 2^24 is exact in float and
  // the correctly-rounded sqrt truncates to the same byte as the double
  // formula of Listing 1 (see kernels.hpp).
  const float p = std::sqrt(static_cast<float>(sx * sx + sy * sy));
  return p > 255.0f ? 255 : static_cast<std::uint8_t>(p);
}

inline std::uint8_t sobel_approx_pixel(const std::uint8_t* img, std::size_t w,
                                       std::size_t y, std::size_t x) {
  const int p = std::abs(sbl_x_appr(img, w, y, x)) +
                std::abs(sbl_y_appr(img, w, y, x));
  return p > 255 ? 255 : static_cast<std::uint8_t>(p);
}

[[maybe_unused]] inline double dot_scalar(const double* a, const double* b,
                                          std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

[[maybe_unused]] inline double sq_dist_scalar(const double* a, const double* b,
                                              std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

// --- vector building blocks -----------------------------------------------

#if SIGRT_KIMPL_LEVEL == 1  // SSE2

/// 4 pixels zero-extended to epi32 (exactly 4 bytes read).
inline __m128i load4_epi32(const std::uint8_t* p) {
  int tmp;
  std::memcpy(&tmp, p, 4);
  __m128i v = _mm_cvtsi32_si128(tmp);
  v = _mm_unpacklo_epi8(v, _mm_setzero_si128());
  return _mm_unpacklo_epi16(v, _mm_setzero_si128());
}

/// 8 pixels zero-extended to epi16 (exactly 8 bytes read).
inline __m128i load8_epi16(const std::uint8_t* p) {
  __m128i v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm_unpacklo_epi8(v, _mm_setzero_si128());
}

inline __m128i abs_epi16(__m128i v) {  // SSE2 has no pabsw
  return _mm_max_epi16(v, _mm_sub_epi16(_mm_setzero_si128(), v));
}

inline double hsum_pd(__m128d v) {
  __m128d hi = _mm_unpackhi_pd(v, v);
  return _mm_cvtsd_f64(_mm_add_sd(v, hi));
}

/// Fixed-tree 8-element dot (dct inner sum): ((p0c0+p1c1)+(p2c2+p3c3)) + ...
inline double dot8(const double* a, const double* b) {
  const __m128d v0 = _mm_mul_pd(_mm_loadu_pd(a + 0), _mm_loadu_pd(b + 0));
  const __m128d v1 = _mm_mul_pd(_mm_loadu_pd(a + 2), _mm_loadu_pd(b + 2));
  const __m128d v2 = _mm_mul_pd(_mm_loadu_pd(a + 4), _mm_loadu_pd(b + 4));
  const __m128d v3 = _mm_mul_pd(_mm_loadu_pd(a + 6), _mm_loadu_pd(b + 6));
  return hsum_pd(_mm_add_pd(_mm_add_pd(v0, v1), _mm_add_pd(v2, v3)));
}

#elif SIGRT_KIMPL_LEVEL == 2  // AVX2 + FMA

/// 8 pixels zero-extended to epi32 (exactly 8 bytes read).
inline __m256i load8_epi32(const std::uint8_t* p) {
  const __m128i v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepu8_epi32(v);
}

/// 16 pixels zero-extended to epi16 (exactly 16 bytes read).
inline __m256i load16_epi16(const std::uint8_t* p) {
  return _mm256_cvtepu8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

inline double hsum_pd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

inline double dot8(const double* a, const double* b) {
  __m256d acc = _mm256_mul_pd(_mm256_loadu_pd(a), _mm256_loadu_pd(b));
  acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + 4), _mm256_loadu_pd(b + 4), acc);
  return hsum_pd(acc);
}

#elif SIGRT_KIMPL_LEVEL == 3  // NEON (AArch64)

/// 4 pixels zero-extended to u32 lanes (exactly 4 bytes read).
inline uint32x4_t load4_u32(const std::uint8_t* p) {
  std::uint32_t tmp;
  std::memcpy(&tmp, p, 4);
  const uint8x8_t b = vcreate_u8(static_cast<std::uint64_t>(tmp));
  const uint16x8_t w16 = vmovl_u8(b);
  return vmovl_u16(vget_low_u16(w16));
}

inline double dot8(const double* a, const double* b) {
  float64x2_t acc0 = vmulq_f64(vld1q_f64(a + 0), vld1q_f64(b + 0));
  float64x2_t acc1 = vmulq_f64(vld1q_f64(a + 2), vld1q_f64(b + 2));
  acc0 = vfmaq_f64(acc0, vld1q_f64(a + 4), vld1q_f64(b + 4));
  acc1 = vfmaq_f64(acc1, vld1q_f64(a + 6), vld1q_f64(b + 6));
  return vaddvq_f64(vaddq_f64(acc0, acc1));
}

#else  // scalar

inline double dot8(const double* a, const double* b) {
  double acc = 0.0;
  for (std::size_t x = 0; x < 8; ++x) acc += a[x] * b[x];
  return acc;
}

#endif

// --- sobel ----------------------------------------------------------------

void sobel_row_accurate_impl(std::uint8_t* res, const std::uint8_t* img,
                             std::size_t w, std::size_t row, std::size_t x0,
                             std::size_t x1) {
  std::size_t x = x0;
  const std::uint8_t* up = img + (row - 1) * w;
  const std::uint8_t* mid = img + row * w;
  const std::uint8_t* dn = img + (row + 1) * w;
  std::uint8_t* out = res + row * w;
  (void)up;
  (void)mid;
  (void)dn;
  (void)out;

#if SIGRT_KIMPL_LEVEL == 1
  for (; x + 4 <= x1; x += 4) {
    const __m128i ul = load4_epi32(up + x - 1), uc = load4_epi32(up + x),
                  ur = load4_epi32(up + x + 1);
    const __m128i ml = load4_epi32(mid + x - 1), mr = load4_epi32(mid + x + 1);
    const __m128i dl = load4_epi32(dn + x - 1), dc = load4_epi32(dn + x),
                  dr = load4_epi32(dn + x + 1);
    const __m128i sx = _mm_sub_epi32(
        _mm_add_epi32(_mm_add_epi32(ul, dl), _mm_slli_epi32(ml, 1)),
        _mm_add_epi32(_mm_add_epi32(ur, dr), _mm_slli_epi32(mr, 1)));
    const __m128i sy = _mm_sub_epi32(
        _mm_add_epi32(_mm_add_epi32(ul, ur), _mm_slli_epi32(uc, 1)),
        _mm_add_epi32(_mm_add_epi32(dl, dr), _mm_slli_epi32(dc, 1)));
    const __m128 sxf = _mm_cvtepi32_ps(sx), syf = _mm_cvtepi32_ps(sy);
    const __m128 mag = _mm_sqrt_ps(
        _mm_add_ps(_mm_mul_ps(sxf, sxf), _mm_mul_ps(syf, syf)));
    // Truncate; packs/packus saturate >255 to 255 (== the scalar clamp).
    const __m128i q = _mm_cvttps_epi32(mag);
    const __m128i b = _mm_packus_epi16(_mm_packs_epi32(q, q), _mm_setzero_si128());
    const int out4 = _mm_cvtsi128_si32(b);
    std::memcpy(out + x, &out4, 4);
  }
#elif SIGRT_KIMPL_LEVEL == 2
  for (; x + 8 <= x1; x += 8) {
    const __m256i ul = load8_epi32(up + x - 1), uc = load8_epi32(up + x),
                  ur = load8_epi32(up + x + 1);
    const __m256i ml = load8_epi32(mid + x - 1), mr = load8_epi32(mid + x + 1);
    const __m256i dl = load8_epi32(dn + x - 1), dc = load8_epi32(dn + x),
                  dr = load8_epi32(dn + x + 1);
    const __m256i sx = _mm256_sub_epi32(
        _mm256_add_epi32(_mm256_add_epi32(ul, dl), _mm256_slli_epi32(ml, 1)),
        _mm256_add_epi32(_mm256_add_epi32(ur, dr), _mm256_slli_epi32(mr, 1)));
    const __m256i sy = _mm256_sub_epi32(
        _mm256_add_epi32(_mm256_add_epi32(ul, ur), _mm256_slli_epi32(uc, 1)),
        _mm256_add_epi32(_mm256_add_epi32(dl, dr), _mm256_slli_epi32(dc, 1)));
    const __m256 sxf = _mm256_cvtepi32_ps(sx), syf = _mm256_cvtepi32_ps(sy);
    const __m256 mag = _mm256_sqrt_ps(
        _mm256_add_ps(_mm256_mul_ps(sxf, sxf), _mm256_mul_ps(syf, syf)));
    const __m256i q = _mm256_cvttps_epi32(mag);
    const __m128i lo = _mm256_castsi256_si128(q);
    const __m128i hi = _mm256_extracti128_si256(q, 1);
    const __m128i w16 = _mm_packs_epi32(lo, hi);
    const __m128i b = _mm_packus_epi16(w16, _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + x), b);
  }
#elif SIGRT_KIMPL_LEVEL == 3
  for (; x + 4 <= x1; x += 4) {
    const int32x4_t ul = vreinterpretq_s32_u32(load4_u32(up + x - 1));
    const int32x4_t uc = vreinterpretq_s32_u32(load4_u32(up + x));
    const int32x4_t ur = vreinterpretq_s32_u32(load4_u32(up + x + 1));
    const int32x4_t ml = vreinterpretq_s32_u32(load4_u32(mid + x - 1));
    const int32x4_t mr = vreinterpretq_s32_u32(load4_u32(mid + x + 1));
    const int32x4_t dl = vreinterpretq_s32_u32(load4_u32(dn + x - 1));
    const int32x4_t dc = vreinterpretq_s32_u32(load4_u32(dn + x));
    const int32x4_t dr = vreinterpretq_s32_u32(load4_u32(dn + x + 1));
    const int32x4_t sx = vsubq_s32(
        vaddq_s32(vaddq_s32(ul, dl), vshlq_n_s32(ml, 1)),
        vaddq_s32(vaddq_s32(ur, dr), vshlq_n_s32(mr, 1)));
    const int32x4_t sy = vsubq_s32(
        vaddq_s32(vaddq_s32(ul, ur), vshlq_n_s32(uc, 1)),
        vaddq_s32(vaddq_s32(dl, dr), vshlq_n_s32(dc, 1)));
    const float32x4_t sxf = vcvtq_f32_s32(sx), syf = vcvtq_f32_s32(sy);
    const float32x4_t mag =
        vsqrtq_f32(vaddq_f32(vmulq_f32(sxf, sxf), vmulq_f32(syf, syf)));
    const uint32x4_t q = vcvtq_u32_f32(mag);  // truncates toward zero
    const uint16x4_t w16 = vqmovn_u32(q);
    const uint8x8_t b = vqmovn_u16(vcombine_u16(w16, w16));
    const std::uint32_t out4 = vget_lane_u32(vreinterpret_u32_u8(b), 0);
    std::memcpy(out + x, &out4, 4);
  }
#endif

  for (; x < x1; ++x) res[row * w + x] = sobel_accurate_pixel(img, w, row, x);
}

void sobel_row_approx_impl(std::uint8_t* res, const std::uint8_t* img,
                           std::size_t w, std::size_t row, std::size_t x0,
                           std::size_t x1) {
  std::size_t x = x0;
  const std::uint8_t* up = img + (row - 1) * w;
  const std::uint8_t* mid = img + row * w;
  const std::uint8_t* dn = img + (row + 1) * w;
  std::uint8_t* out = res + row * w;
  (void)up;
  (void)mid;
  (void)dn;
  (void)out;

#if SIGRT_KIMPL_LEVEL == 1
  for (; x + 8 <= x1; x += 8) {
    const __m128i ml = load8_epi16(mid + x - 1), mr = load8_epi16(mid + x + 1);
    const __m128i dl = load8_epi16(dn + x - 1), dr = load8_epi16(dn + x + 1);
    const __m128i uc = load8_epi16(up + x), ur = load8_epi16(up + x + 1);
    const __m128i dc = load8_epi16(dn + x);
    const __m128i sx = _mm_sub_epi16(_mm_add_epi16(_mm_slli_epi16(ml, 1), dl),
                                     _mm_add_epi16(_mm_slli_epi16(mr, 1), dr));
    const __m128i sy = _mm_sub_epi16(_mm_add_epi16(_mm_slli_epi16(uc, 1), ur),
                                     _mm_add_epi16(_mm_slli_epi16(dc, 1), dr));
    const __m128i p = _mm_add_epi16(abs_epi16(sx), abs_epi16(sy));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + x),
                     _mm_packus_epi16(p, _mm_setzero_si128()));
  }
#elif SIGRT_KIMPL_LEVEL == 2
  for (; x + 16 <= x1; x += 16) {
    const __m256i ml = load16_epi16(mid + x - 1), mr = load16_epi16(mid + x + 1);
    const __m256i dl = load16_epi16(dn + x - 1), dr = load16_epi16(dn + x + 1);
    const __m256i uc = load16_epi16(up + x), ur = load16_epi16(up + x + 1);
    const __m256i dc = load16_epi16(dn + x);
    const __m256i sx =
        _mm256_sub_epi16(_mm256_add_epi16(_mm256_slli_epi16(ml, 1), dl),
                         _mm256_add_epi16(_mm256_slli_epi16(mr, 1), dr));
    const __m256i sy =
        _mm256_sub_epi16(_mm256_add_epi16(_mm256_slli_epi16(uc, 1), ur),
                         _mm256_add_epi16(_mm256_slli_epi16(dc, 1), dr));
    const __m256i p = _mm256_add_epi16(_mm256_abs_epi16(sx),
                                       _mm256_abs_epi16(sy));
    const __m128i b = _mm_packus_epi16(_mm256_castsi256_si128(p),
                                       _mm256_extracti128_si256(p, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), b);
  }
#elif SIGRT_KIMPL_LEVEL == 3
  for (; x + 8 <= x1; x += 8) {
    const int16x8_t ml = vreinterpretq_s16_u16(vmovl_u8(vld1_u8(mid + x - 1)));
    const int16x8_t mr = vreinterpretq_s16_u16(vmovl_u8(vld1_u8(mid + x + 1)));
    const int16x8_t dl = vreinterpretq_s16_u16(vmovl_u8(vld1_u8(dn + x - 1)));
    const int16x8_t dr = vreinterpretq_s16_u16(vmovl_u8(vld1_u8(dn + x + 1)));
    const int16x8_t uc = vreinterpretq_s16_u16(vmovl_u8(vld1_u8(up + x)));
    const int16x8_t ur = vreinterpretq_s16_u16(vmovl_u8(vld1_u8(up + x + 1)));
    const int16x8_t dc = vreinterpretq_s16_u16(vmovl_u8(vld1_u8(dn + x)));
    const int16x8_t sx = vsubq_s16(vaddq_s16(vshlq_n_s16(ml, 1), dl),
                                   vaddq_s16(vshlq_n_s16(mr, 1), dr));
    const int16x8_t sy = vsubq_s16(vaddq_s16(vshlq_n_s16(uc, 1), ur),
                                   vaddq_s16(vshlq_n_s16(dc, 1), dr));
    const int16x8_t p = vaddq_s16(vabsq_s16(sx), vabsq_s16(sy));
    vst1_u8(out + x, vqmovun_s16(p));  // saturates to [0, 255]
  }
#endif

  for (; x < x1; ++x) res[row * w + x] = sobel_approx_pixel(img, w, row, x);
}

// --- dct ------------------------------------------------------------------

void dct_block_band_impl(float* block, const std::uint8_t* img,
                         std::size_t stride, std::size_t px0, std::size_t py0,
                         std::size_t band, const double* ct,
                         const double* alpha) {
  // Center the 8x8 pixel block once per (block, band) — the historic scalar
  // code re-read and re-centered it per coefficient.
  double px[64];
  for (std::size_t y = 0; y < 8; ++y) {
    const std::uint8_t* row = img + (py0 + y) * stride + px0;
    for (std::size_t x = 0; x < 8; ++x) {
      px[y * 8 + x] = static_cast<double>(row[x]) - 128.0;
    }
  }
  for (std::size_t u = 0; u <= band && u < 8; ++u) {
    const std::size_t v = band - u;
    if (v >= 8) continue;
    const double* ctu = ct + u * 8;
    const double* ctv = ct + v * 8;
    double acc = 0.0;
    for (std::size_t y = 0; y < 8; ++y) acc += ctv[y] * dot8(px + y * 8, ctu);
    block[v * 8 + u] = static_cast<float>(alpha[u] * alpha[v] * acc);
  }
}

// --- generic spans (jacobi / kmeans) --------------------------------------

double dot_span_impl(const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  double acc = 0.0;
  (void)i;

#if SIGRT_KIMPL_LEVEL == 1
  __m128d acc0 = _mm_setzero_pd(), acc1 = _mm_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc1 = _mm_add_pd(acc1,
                      _mm_mul_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  acc = hsum_pd(_mm_add_pd(acc0, acc1));
#elif SIGRT_KIMPL_LEVEL == 2
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4),
                           acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    i += 4;
  }
  acc = hsum_pd(_mm256_add_pd(acc0, acc1));
#elif SIGRT_KIMPL_LEVEL == 3
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(a + i), vld1q_f64(b + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
  }
  acc = vaddvq_f64(vaddq_f64(acc0, acc1));
#endif

#if SIGRT_KIMPL_LEVEL == 0
  acc = dot_scalar(a, b, n);
#else
  for (; i < n; ++i) acc += a[i] * b[i];
#endif
  return acc;
}

double sq_dist_span_impl(const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  double acc = 0.0;
  (void)i;

#if SIGRT_KIMPL_LEVEL == 1
  __m128d acc0 = _mm_setzero_pd(), acc1 = _mm_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d1 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(d0, d0));
    acc1 = _mm_add_pd(acc1, _mm_mul_pd(d1, d1));
  }
  acc = hsum_pd(_mm_add_pd(acc0, acc1));
#elif SIGRT_KIMPL_LEVEL == 2
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(a + i + 4),
                                     _mm256_loadu_pd(b + i + 4));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    i += 4;
  }
  acc = hsum_pd(_mm256_add_pd(acc0, acc1));
#elif SIGRT_KIMPL_LEVEL == 3
  float64x2_t acc0 = vdupq_n_f64(0.0), acc1 = vdupq_n_f64(0.0);
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d1 = vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc0 = vfmaq_f64(acc0, d0, d0);
    acc1 = vfmaq_f64(acc1, d1, d1);
  }
  acc = vaddvq_f64(vaddq_f64(acc0, acc1));
#endif

#if SIGRT_KIMPL_LEVEL == 0
  acc = sq_dist_scalar(a, b, n);
#else
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
#endif
  return acc;
}

std::size_t nearest_centroid_impl(const double* p, const double* centroids,
                                  std::size_t k, std::size_t dims,
                                  std::size_t use_dims) {
  std::size_t best = 0;
  double best_d = sq_dist_span_impl(p, centroids, use_dims);
  for (std::size_t c = 1; c < k; ++c) {
    const double d = sq_dist_span_impl(p, centroids + c * dims, use_dims);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

const KernelTable kTable = {
    SIGRT_KIMPL_ISA,
    &sobel_row_accurate_impl,
    &sobel_row_approx_impl,
    &dct_block_band_impl,
    &dot_span_impl,
    &sq_dist_span_impl,
    &nearest_centroid_impl,
};

}  // namespace
}  // namespace SIGRT_KIMPL_NS

const KernelTable* SIGRT_KIMPL_TABLE_FN() noexcept {
  return &SIGRT_KIMPL_NS::kTable;
}

}  // namespace sigrt::apps::kern
