#include "apps/fluidanimate.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/quality.hpp"
#include "support/rng.hpp"

namespace sigrt::apps::fluid {

namespace {

constexpr double kPi = 3.14159265358979323846;

// SPH constants (Mueller-style kernels, scaled for a unit box).
constexpr double kH = 0.0625;          // smoothing radius
constexpr double kRestDensity = 1000.0;
constexpr double kMass = 0.35;
constexpr double kStiffness = 2.5;     // pressure constant
constexpr double kViscosity = 1.2;
constexpr double kGravity = -9.8;
constexpr double kDamping = 0.5;       // wall bounce damping

/// Uniform grid over the unit box with cell size >= kH.
struct Grid {
  std::size_t dim = 0;     // cells per axis
  double cell = 0.0;
  std::vector<std::vector<std::uint32_t>> cells;

  explicit Grid(double h) {
    dim = std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / h));
    cell = 1.0 / static_cast<double>(dim);
    cells.resize(dim * dim * dim);
  }

  [[nodiscard]] std::size_t index_of(double x, double y, double z) const {
    auto clampi = [this](double v) {
      const auto i = static_cast<long>(v / cell);
      return static_cast<std::size_t>(std::clamp<long>(i, 0, static_cast<long>(dim) - 1));
    };
    return (clampi(z) * dim + clampi(y)) * dim + clampi(x);
  }

  void rebuild(const State& s) {
    for (auto& c : cells) c.clear();
    for (std::size_t i = 0; i < s.px.size(); ++i) {
      cells[index_of(s.px[i], s.py[i], s.pz[i])].push_back(
          static_cast<std::uint32_t>(i));
    }
  }

  /// Visits every particle in the 27-cell neighborhood of (x, y, z).
  template <typename Visitor>
  void neighbors(double x, double y, double z, Visitor&& visit) const {
    const auto cx = static_cast<long>(x / cell);
    const auto cy = static_cast<long>(y / cell);
    const auto cz = static_cast<long>(z / cell);
    for (long dz = -1; dz <= 1; ++dz) {
      for (long dy = -1; dy <= 1; ++dy) {
        for (long dx = -1; dx <= 1; ++dx) {
          const long nx = cx + dx, ny = cy + dy, nz = cz + dz;
          if (nx < 0 || ny < 0 || nz < 0 || nx >= static_cast<long>(dim) ||
              ny >= static_cast<long>(dim) || nz >= static_cast<long>(dim)) {
            continue;
          }
          for (std::uint32_t j :
               cells[(static_cast<std::size_t>(nz) * dim +
                      static_cast<std::size_t>(ny)) *
                         dim +
                     static_cast<std::size_t>(nx)]) {
            visit(j);
          }
        }
      }
    }
  }
};

State initial_state(const Options& opt) {
  State s;
  s.px.resize(opt.particles);
  s.py.resize(opt.particles);
  s.pz.resize(opt.particles);
  s.vx.assign(opt.particles, 0.0);
  s.vy.assign(opt.particles, 0.0);
  s.vz.assign(opt.particles, 0.0);
  // A block of fluid dropped in one corner — deterministic lattice with a
  // tiny seeded jitter to break symmetry.
  support::Xoshiro256 rng(opt.common.seed);
  const auto side = static_cast<std::size_t>(
      std::ceil(std::cbrt(static_cast<double>(opt.particles))));
  const double spacing = 0.4 / static_cast<double>(side);
  for (std::size_t i = 0; i < opt.particles; ++i) {
    const std::size_t ix = i % side;
    const std::size_t iy = (i / side) % side;
    const std::size_t iz = i / (side * side);
    s.px[i] = 0.1 + spacing * static_cast<double>(ix) + rng.uniform(0.0, 1e-4);
    s.py[i] = 0.5 + spacing * static_cast<double>(iy) + rng.uniform(0.0, 1e-4);
    s.pz[i] = 0.1 + spacing * static_cast<double>(iz) + rng.uniform(0.0, 1e-4);
  }
  return s;
}

/// Poly6 density kernel.
double w_poly6(double r2) {
  const double h2 = kH * kH;
  if (r2 >= h2) return 0.0;
  const double d = h2 - r2;
  return 315.0 / (64.0 * kPi * std::pow(kH, 9)) * d * d * d;
}

/// Density pass for one chunk of particles.
void density_task(const State& s, const Grid& grid, std::vector<double>& rho,
                  std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    double acc = 0.0;
    grid.neighbors(s.px[i], s.py[i], s.pz[i], [&](std::uint32_t j) {
      const double dx = s.px[i] - s.px[j];
      const double dy = s.py[i] - s.py[j];
      const double dz = s.pz[i] - s.pz[j];
      acc += w_poly6(dx * dx + dy * dy + dz * dz);
    });
    rho[i] = std::max(kMass * acc, 1e-9);
  }
}

/// Force + integrate pass for one chunk (spiky pressure gradient, linear
/// viscosity, gravity; semi-implicit Euler with damped wall bounces).
/// Reads only the pre-step snapshot `s` and writes the chunk's slice of
/// `next`, so chunk tasks are order-independent: the parallel execution is
/// bitwise identical to the serial reference.
void force_task(const State& s, const Grid& grid, const std::vector<double>& rho,
                double dt, State& next, std::size_t begin, std::size_t end) {
  const double spiky = -45.0 / (kPi * std::pow(kH, 6));
  const double visc = 45.0 / (kPi * std::pow(kH, 6)) * kViscosity;

  for (std::size_t i = begin; i < end; ++i) {
    const double pi = kStiffness * (rho[i] - kRestDensity);
    double fx = 0.0, fy = 0.0, fz = 0.0;
    grid.neighbors(s.px[i], s.py[i], s.pz[i], [&](std::uint32_t j) {
      if (j == i) return;
      const double dx = s.px[i] - s.px[j];
      const double dy = s.py[i] - s.py[j];
      const double dz = s.pz[i] - s.pz[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= kH * kH || r2 < 1e-12) return;
      const double r = std::sqrt(r2);
      const double pj = kStiffness * (rho[j] - kRestDensity);
      // Pressure (symmetrized) along the unit separation vector.
      const double pterm =
          spiky * kMass * (pi + pj) / (2.0 * rho[j]) * (kH - r) * (kH - r) / r;
      fx += pterm * dx;
      fy += pterm * dy;
      fz += pterm * dz;
      // Viscosity.
      const double vterm = visc * kMass / rho[j] * (kH - r);
      fx += vterm * (s.vx[j] - s.vx[i]);
      fy += vterm * (s.vy[j] - s.vy[i]);
      fz += vterm * (s.vz[j] - s.vz[i]);
    });
    fy += kGravity * rho[i];

    next.vx[i] = s.vx[i] + dt * fx / rho[i];
    next.vy[i] = s.vy[i] + dt * fy / rho[i];
    next.vz[i] = s.vz[i] + dt * fz / rho[i];
    next.px[i] = s.px[i] + dt * next.vx[i];
    next.py[i] = s.py[i] + dt * next.vy[i];
    next.pz[i] = s.pz[i] + dt * next.vz[i];

    auto bounce = [](double& p, double& v) {
      if (p < 0.0) {
        p = 0.0;
        v = -v * kDamping;
      } else if (p > 1.0) {
        p = 1.0;
        v = -v * kDamping;
      }
    };
    bounce(next.px[i], next.vx[i]);
    bounce(next.py[i], next.vy[i]);
    bounce(next.pz[i], next.vz[i]);
  }
}

/// Approximate step for one chunk: linear extrapolation along the current
/// velocity — no density, no forces (§4.1).
void advect_task(State& s, double dt, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    s.px[i] = std::clamp(s.px[i] + dt * s.vx[i], 0.0, 1.0);
    s.py[i] = std::clamp(s.py[i] + dt * s.vy[i], 0.0, 1.0);
    s.pz[i] = std::clamp(s.pz[i] + dt * s.vz[i], 0.0, 1.0);
  }
}

State make_scratch(std::size_t n) {
  State sc;
  sc.px.resize(n);
  sc.py.resize(n);
  sc.pz.resize(n);
  sc.vx.resize(n);
  sc.vy.resize(n);
  sc.vz.resize(n);
  return sc;
}

void accurate_step_serial(State& s, State& scratch, Grid& grid,
                          std::vector<double>& rho, double dt) {
  grid.rebuild(s);
  density_task(s, grid, rho, 0, s.px.size());
  force_task(s, grid, rho, dt, scratch, 0, s.px.size());
  std::swap(s, scratch);
}

}  // namespace

double accurate_step_fraction(Degree degree) noexcept {
  switch (degree) {
    case Degree::Mild: return 0.5;
    case Degree::Medium: return 0.25;
    case Degree::Aggressive: return 0.125;
  }
  return 1.0;
}

std::size_t period_for(Degree degree) noexcept {
  switch (degree) {
    case Degree::Mild: return 2;
    case Degree::Medium: return 4;
    case Degree::Aggressive: return 8;
  }
  return 1;
}

bool variant_supported(Variant v) noexcept { return v != Variant::Perforated; }

State reference(const Options& options) {
  State s = initial_state(options);
  State scratch = make_scratch(options.particles);
  Grid grid(kH);
  std::vector<double> rho(options.particles, 0.0);
  for (std::size_t step = 0; step < options.steps; ++step) {
    accurate_step_serial(s, scratch, grid, rho, options.dt);
  }
  return s;
}

RunResult run(const Options& options, State* out) {
  RunResult result;
  result.app = "fluidanimate";
  result.quality_metric = "rel.err";

  if (!variant_supported(options.common.variant)) {
    result.variant = to_string(options.common.variant);
    result.degree = to_string(options.common.degree);
    result.quality = -1.0;  // sentinel: not applicable
    return result;
  }

  const State ref = reference(options);
  const std::size_t period = period_for(options.common.degree);
  const std::size_t chunks = (options.particles + options.chunk - 1) / options.chunk;

  State s = initial_state(options);
  State scratch = make_scratch(options.particles);
  Grid grid(kH);
  std::vector<double> rho(options.particles, 0.0);

  run_measured(options.common, result, [&](Runtime& rt) {
    const GroupId g = rt.create_group("fluid", 1.0);
    const bool accurate_only = options.common.variant == Variant::Accurate;

    auto chunk_range = [&](std::size_t c, std::size_t& lo, std::size_t& hi) {
      lo = c * options.chunk;
      hi = std::min(options.particles, lo + options.chunk);
    };

    for (std::size_t step = 0; step < options.steps; ++step) {
      const bool accurate_step =
          accurate_only || options.force_all_accurate || step % period == 0;
      // The paper's knob: ratio 1.0 for accurate steps, 0.0 for
      // approximate ones — every task in the step follows.
      rt.set_ratio(g, accurate_step ? 1.0 : 0.0);

      if (accurate_step) {
        grid.rebuild(s);
        // Density wave; the approxfun advects, which only runs if the
        // runtime approximates (ratio 1.0 says it must not).
        for (std::size_t c = 0; c < chunks; ++c) {
          std::size_t lo, hi;
          chunk_range(c, lo, hi);
          rt.spawn(task([&, lo, hi] { density_task(s, grid, rho, lo, hi); })
                       .approx([&, lo, hi] { advect_task(s, options.dt, lo, hi); })
                       .significance(0.5)
                       .group(g)
                       .out(rho.data() + lo, hi - lo));
        }
        rt.wait_group(g);
        // Force + integrate wave: reads the pre-step snapshot `s`, writes
        // the chunk's slice of `scratch`; the master swaps after the wave.
        for (std::size_t c = 0; c < chunks; ++c) {
          std::size_t lo, hi;
          chunk_range(c, lo, hi);
          rt.spawn(task([&, lo, hi] {
                     force_task(s, grid, rho, options.dt, scratch, lo, hi);
                   })
                       .approx([&, lo, hi] { advect_task(s, options.dt, lo, hi); })
                       .significance(0.5)
                       .group(g)
                       .in(rho.data(), rho.size()));
        }
        rt.wait_group(g);
        std::swap(s, scratch);
      } else {
        // Approximate step: single advection wave at ratio 0.0.
        for (std::size_t c = 0; c < chunks; ++c) {
          std::size_t lo, hi;
          chunk_range(c, lo, hi);
          rt.spawn(task([&, lo, hi] {
                     // Accurate body of an approximate step: ratio 0.0
                     // rules it out, but it stays well-defined (best-effort
                     // standalone accurate update of this chunk).
                     grid.rebuild(s);
                     density_task(s, grid, rho, lo, hi);
                     force_task(s, grid, rho, options.dt, scratch, lo, hi);
                     for (std::size_t i = lo; i < hi; ++i) {
                       s.px[i] = scratch.px[i];
                       s.py[i] = scratch.py[i];
                       s.pz[i] = scratch.pz[i];
                       s.vx[i] = scratch.vx[i];
                       s.vy[i] = scratch.vy[i];
                       s.vz[i] = scratch.vz[i];
                     }
                   })
                       .approx([&, lo, hi] { advect_task(s, options.dt, lo, hi); })
                       .significance(0.5)
                       .group(g));
        }
        rt.wait_group(g);
      }
    }
  });

  // Quality: relative L2 error over the concatenated final positions.
  std::vector<double> ref_pos;
  std::vector<double> got_pos;
  ref_pos.reserve(3 * options.particles);
  got_pos.reserve(3 * options.particles);
  for (std::size_t i = 0; i < options.particles; ++i) {
    ref_pos.push_back(ref.px[i]);
    ref_pos.push_back(ref.py[i]);
    ref_pos.push_back(ref.pz[i]);
    got_pos.push_back(s.px[i]);
    got_pos.push_back(s.py[i]);
    got_pos.push_back(s.pz[i]);
  }
  result.quality = metrics::relative_l2_error(ref_pos, got_pos);
  result.quality_aux = result.quality;
  if (out != nullptr) *out = std::move(s);
  return result;
}

}  // namespace sigrt::apps::fluid
