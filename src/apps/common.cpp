#include "apps/common.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "energy/meter.hpp"
#include "support/timer.hpp"

namespace sigrt::apps {

namespace {

/// Optional stall watchdog: SIGRT_WATCHDOG=<seconds> dumps the runtime
/// state to stderr and aborts if a measured region makes no progress for
/// that long.  Diagnostic aid for scheduler/dependence bugs.
class StallWatchdog {
 public:
  StallWatchdog(const Runtime& rt) {
    const char* env = std::getenv("SIGRT_WATCHDOG");
    if (env == nullptr) return;
    const int limit = std::atoi(env);
    if (limit <= 0) return;
    thread_ = std::thread([this, &rt, limit] {
      std::uint64_t last = 0;
      int quiet = 0;
      while (!done_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::seconds(1));
        const std::uint64_t now =
            rt.stats().accurate + rt.stats().approximate + rt.stats().dropped;
        quiet = now == last ? quiet + 1 : 0;
        last = now;
        if (quiet >= limit && !done_.load(std::memory_order_acquire)) {
          std::fprintf(stderr, "sigrt watchdog: no progress for %ds\n", limit);
          rt.dump_state(stderr);
          std::abort();
        }
      }
    });
  }

  ~StallWatchdog() {
    done_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::atomic<bool> done_{false};
  std::thread thread_;
};

}  // namespace

RuntimeConfig runtime_config_for(const CommonOptions& common) {
  RuntimeConfig rc;
  rc.workers = common.workers;
  rc.policy = policy_for(common.variant);
  rc.gtb_buffer = common.gtb_buffer;
  rc.lqh_levels = common.lqh_levels;
  rc.steal = common.steal;
  rc.unreliable_workers = common.unreliable_workers;
  rc.unreliable_fault_rate = common.unreliable_fault_rate;
  rc.seed = common.seed;
  rc.record_task_log = true;
  return rc;
}

void run_measured(const CommonOptions& common, RunResult& result,
                  const std::function<void(Runtime&)>& work) {
  Runtime rt(runtime_config_for(common));
  const StallWatchdog watchdog(rt);
  result.variant = to_string(common.variant);
  result.degree = to_string(common.degree);

  support::Stopwatch sw;
  const energy::Scope scope(rt.meter());
  sw.start();
  work(rt);
  rt.wait_all();
  sw.stop();

  result.time_s = sw.elapsed_s();
  result.energy_j = scope.joules();

  // Aggregate the accounting over every group that saw tasks.  Ratio diff
  // follows the paper's formula: the mean over groups of
  // |requested_i - provided_i|.
  std::uint64_t groups_used = 0;
  double diff_sum = 0.0;
  double requested_mass = 0.0;
  double inversed_mass = 0.0;
  for (const GroupReport& g : rt.all_group_reports()) {
    const std::uint64_t executed = g.accurate + g.approximate + g.dropped;
    if (executed == 0) continue;
    ++groups_used;
    result.tasks_total += executed;
    result.tasks_accurate += g.accurate;
    result.tasks_approximate += g.approximate;
    result.tasks_dropped += g.dropped;
    diff_sum += g.ratio_diff();
    requested_mass += g.mean_requested_ratio * static_cast<double>(executed);
    inversed_mass += g.inversion_fraction * static_cast<double>(executed);
  }
  if (result.tasks_total > 0) {
    const auto total = static_cast<double>(result.tasks_total);
    result.provided_ratio = static_cast<double>(result.tasks_accurate) / total;
    result.requested_ratio = requested_mass / total;
    result.inversion_fraction = inversed_mass / total;
  }
  if (groups_used > 0) {
    result.ratio_diff = diff_sum / static_cast<double>(groups_used);
  }
  result.steals = rt.stats().steals;
  if (result.time_s > 0.0) {
    result.tasks_per_sec =
        static_cast<double>(result.tasks_total) / result.time_s;
  }
}

}  // namespace sigrt::apps
