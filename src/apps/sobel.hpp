// Sobel edge-detection benchmark — the paper's running example (Listing 1).
//
// One task computes one output row.  Significance cycles (i%9+1)/10 across
// rows so approximated rows spread uniformly over the image; the approxfun
// uses 2/3 of the filter taps and |sx|+|sy| instead of sqrt(sx^2+sy^2).
// Degrees (Table 1): ratio 0.8 / 0.3 / 0.0 of rows accurate.
// Quality: PSNR against the fully accurate output.
//
// The perforated comparator skips whole row-tasks blindly (modulo shape),
// leaving skipped rows black — the quality collapse shown in Figure 3.
#pragma once

#include "apps/common.hpp"
#include "support/image.hpp"

namespace sigrt::apps::sobel {

struct Options {
  std::size_t width = 512;
  std::size_t height = 512;
  /// Repeats the filter over the image to give tasks paper-like weight.
  unsigned repeats = 1;
  CommonOptions common;

  /// Override the degree->ratio mapping when >= 0 (used by the Figure 1
  /// quadrant study, which sweeps arbitrary ratios).
  double ratio_override = -1.0;

  /// Rows per spawned task (0 = auto: one row while a few full-width rows
  /// stay L2-resident — the historical shape — switching to 8-row bands on
  /// wider images so the column tiling in kernels.hpp has rows to share a
  /// strip across).  Band significance follows the band's first row.
  std::size_t band_rows = 0;
};

/// Accurate-task ratio for a degree (Table 1: 80% / 30% / 0%).
[[nodiscard]] double ratio_for(Degree degree) noexcept;

/// Plain serial accurate implementation (reference semantics).
[[nodiscard]] support::Image reference(const support::Image& input);

/// Serial approximate implementation (every row via the approxfun).
[[nodiscard]] support::Image reference_approx(const support::Image& input);

/// Runs one measured experiment; `out` (optional) receives the output image
/// for visual comparisons (Figures 1 and 3).
RunResult run(const Options& options, support::Image* out = nullptr);

}  // namespace sigrt::apps::sobel
