// Runtime-dispatched app kernels (sobel / dct / jacobi / kmeans hot loops).
//
// Each kernel is compiled once per ISA level (kernels_scalar.cpp at default
// flags, kernels_base.cpp picking up the architecture baseline — SSE2 on
// x86-64, NEON on aarch64 — and kernels_avx2.cpp built with -mavx2 -mfma)
// from the shared implementation in kernels_impl.inl, and dispatched through
// a per-level function-pointer table selected by support::simd::active().
//
// Numerics contract (asserted by tests/simd_test.cpp):
//  - sobel (integer output): bit-exact across every level.  The accurate
//    magnitude sqrt(sx^2+sy^2) is computed in float on all levels; for the
//    representable tap range (|sx|,|sy| <= 1020) float and double sqrt
//    truncate to the same byte, so this also matches the paper's double
//    formula.
//  - dct / jacobi / kmeans (floating point): vector levels reassociate the
//    accumulations (and may contract to FMA), so results agree with the
//    scalar level to a ULP-scaled epsilon, not bitwise.  Within one level
//    results are deterministic, and every caller (reference() included)
//    routes through the same dispatched kernel, so reference comparisons in
//    the app harnesses stay self-consistent.
//
// Alignment contract: no kernel requires aligned pointers — all vector
// loads/stores are unaligned, and every span entry point accepts arbitrary
// [begin, end) sub-ranges (odd widths, unaligned offsets) with scalar tails.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/simd.hpp"

namespace sigrt::apps::kern {

/// One fully-resolved kernel set for one ISA level.
struct KernelTable {
  support::simd::Isa isa = support::simd::Isa::Scalar;

  /// Sobel row span [x0, x1) of row `row` (caller guarantees the 1-pixel
  /// halo: 1 <= x0 <= x1 <= w-1, 1 <= row < h-1).  Accurate taps +
  /// sqrt(sx^2+sy^2); approximate taps + |sx|+|sy| (Listing 1).
  void (*sobel_row_accurate)(std::uint8_t* res, const std::uint8_t* img,
                             std::size_t w, std::size_t row, std::size_t x0,
                             std::size_t x1) = nullptr;
  void (*sobel_row_approx)(std::uint8_t* res, const std::uint8_t* img,
                           std::size_t w, std::size_t row, std::size_t x0,
                           std::size_t x1) = nullptr;

  /// All coefficients (u, v) with u+v == band of the 8x8 block whose
  /// top-left pixel is (px0, py0); writes block[v*8 + u].  `ct` is the 8x8
  /// cosine table ct[u*8+x] = cos((2x+1)u*pi/16); `alpha` the 8 norm factors.
  void (*dct_block_band)(float* block, const std::uint8_t* img,
                         std::size_t stride, std::size_t px0, std::size_t py0,
                         std::size_t band, const double* ct,
                         const double* alpha) = nullptr;

  /// sum_i a[i]*b[i] (jacobi row updates; dct inner sums).
  double (*dot_span)(const double* a, const double* b, std::size_t n) = nullptr;

  /// sum_i (a[i]-b[i])^2 (kmeans distances).
  double (*sq_dist_span)(const double* a, const double* b,
                         std::size_t n) = nullptr;

  /// argmin_c sq_dist(p, centroids + c*dims, use_dims); first strict minimum
  /// wins (same tie-break as the historical scalar loop).
  std::size_t (*nearest_centroid)(const double* p, const double* centroids,
                                  std::size_t k, std::size_t dims,
                                  std::size_t use_dims) = nullptr;
};

namespace detail {
/// Per-TU table getters; a level that is not compiled in returns nullptr.
const KernelTable* table_scalar() noexcept;
const KernelTable* table_base() noexcept;   // SSE2 (x86) or NEON (aarch64)
const KernelTable* table_avx2() noexcept;
}  // namespace detail

/// Table for an explicit level, degrading to the best compiled-in fallback
/// (AVX2 -> SSE2 -> scalar, NEON -> scalar).  Never null.
[[nodiscard]] const KernelTable& table_for(support::simd::Isa isa) noexcept;

/// Table for the current support::simd::active() level.
[[nodiscard]] inline const KernelTable& table() noexcept {
  return table_for(support::simd::active());
}

// --- dispatched convenience wrappers --------------------------------------

inline void sobel_row_accurate(std::uint8_t* res, const std::uint8_t* img,
                               std::size_t w, std::size_t row, std::size_t x0,
                               std::size_t x1) {
  table().sobel_row_accurate(res, img, w, row, x0, x1);
}

inline void sobel_row_approx(std::uint8_t* res, const std::uint8_t* img,
                             std::size_t w, std::size_t row, std::size_t x0,
                             std::size_t x1) {
  table().sobel_row_approx(res, img, w, row, x0, x1);
}

// --- cache-tiled sobel bands ----------------------------------------------
// A full-width pass over consecutive rows streams (rows+2) * w input bytes;
// once ~4 rows stop fitting in L2 the three-row halo of row y is evicted
// before row y+1 can reuse it and every input byte is fetched from
// L3/DRAM three times.  The band entry points below restore the reuse for
// arbitrarily wide images by walking column strips of `tile_cols` pixels
// down the whole band before advancing to the next strip, so a strip's
// halo stays L2-resident for every row that touches it.  Output is
// byte-identical to the per-row calls (same kernels, same spans).

/// Column-strip width (pixels) that keeps one strip of a `band_rows`-row
/// band L2-resident: (band_rows + 2) input rows + band_rows output rows of
/// the strip are budgeted into half the probed per-core L2 (256 KiB
/// fallback when the probe reports nothing).  Clamped to [64, w].
[[nodiscard]] std::size_t sobel_tile_cols(std::size_t w,
                                          std::size_t band_rows) noexcept;

/// Sobel rows [y0, y1) over the interior span [1, w-1), column-tiled.
/// `tile_cols` == 0 derives the strip width from sobel_tile_cols(); callers
/// guarantee 1 <= y0 <= y1 <= h-1 (same halo contract as the row calls).
void sobel_band_accurate(std::uint8_t* res, const std::uint8_t* img,
                         std::size_t w, std::size_t y0, std::size_t y1,
                         std::size_t tile_cols = 0);
void sobel_band_approx(std::uint8_t* res, const std::uint8_t* img,
                       std::size_t w, std::size_t y0, std::size_t y1,
                       std::size_t tile_cols = 0);

inline void dct_block_band(float* block, const std::uint8_t* img,
                           std::size_t stride, std::size_t px0, std::size_t py0,
                           std::size_t band, const double* ct,
                           const double* alpha) {
  table().dct_block_band(block, img, stride, px0, py0, band, ct, alpha);
}

[[nodiscard]] inline double dot_span(const double* a, const double* b,
                                     std::size_t n) {
  return table().dot_span(a, b, n);
}

[[nodiscard]] inline double sq_dist_span(const double* a, const double* b,
                                         std::size_t n) {
  return table().sq_dist_span(a, b, n);
}

[[nodiscard]] inline std::size_t nearest_centroid(const double* p,
                                                  const double* centroids,
                                                  std::size_t k,
                                                  std::size_t dims,
                                                  std::size_t use_dims) {
  return table().nearest_centroid(p, centroids, k, dims, use_dims);
}

}  // namespace sigrt::apps::kern
