#include "apps/dct.hpp"

#include <array>
#include <cmath>

#include "apps/kernels.hpp"
#include "metrics/quality.hpp"
#include "perforation/perforate.hpp"

namespace sigrt::apps::dct {

namespace {

using support::Image;

constexpr double kPi = 3.14159265358979323846;

/// cos((2x+1)*u*pi/16) lookup, flat row-major ct[u*8+x] (the layout the
/// SIMD kernel consumes), built once.
const std::array<double, kBlock * kBlock>& cos_table() {
  static const auto table = [] {
    std::array<double, kBlock * kBlock> t{};
    for (std::size_t u = 0; u < kBlock; ++u) {
      for (std::size_t x = 0; x < kBlock; ++x) {
        t[u * kBlock + x] = std::cos((2.0 * static_cast<double>(x) + 1.0) *
                                     static_cast<double>(u) * kPi /
                                     (2.0 * static_cast<double>(kBlock)));
      }
    }
    return t;
  }();
  return table;
}

const std::array<double, kBlock>& alpha_table() {
  static const auto table = [] {
    std::array<double, kBlock> t{};
    for (std::size_t u = 0; u < kBlock; ++u) {
      t[u] = u == 0 ? std::sqrt(1.0 / static_cast<double>(kBlock))
                    : std::sqrt(2.0 / static_cast<double>(kBlock));
    }
    return t;
  }();
  return table;
}

/// Task body: one diagonal band (all (u,v) with u+v == band) for every
/// block in one stripe of block-rows.  Per block the dispatched kernel
/// centers the 8x8 pixels once and computes the band's coefficients with
/// vectorized inner sums.
void band_task(float* coeffs, const Image& img, std::size_t blocks_x,
               std::size_t by, std::size_t band) {
  const double* ct = cos_table().data();
  const double* alpha = alpha_table().data();
  for (std::size_t bx = 0; bx < blocks_x; ++bx) {
    float* block = coeffs + (by * blocks_x + bx) * kBlock * kBlock;
    kern::dct_block_band(block, img.data(), img.width(), bx * kBlock,
                         by * kBlock, band, ct, alpha);
  }
}

}  // namespace

double ratio_for(Degree degree) noexcept {
  switch (degree) {
    case Degree::Mild: return 0.80;
    case Degree::Medium: return 0.40;
    case Degree::Aggressive: return 0.10;
  }
  return 1.0;
}

double band_significance(std::size_t band) noexcept {
  // DC band -> 1.0 (unconditional), last band -> 1/15.  Linear in between:
  // human vision weights low spatial frequencies higher (§1).
  return 1.0 - static_cast<double>(band) / static_cast<double>(kBands);
}

std::vector<float> reference(const Image& input) {
  const std::size_t blocks_x = input.width() / kBlock;
  const std::size_t blocks_y = input.height() / kBlock;
  std::vector<float> coeffs(blocks_x * blocks_y * kBlock * kBlock, 0.0f);
  for (std::size_t by = 0; by < blocks_y; ++by) {
    for (std::size_t band = 0; band < kBands; ++band) {
      band_task(coeffs.data(), input, blocks_x, by, band);
    }
  }
  return coeffs;
}

Image inverse(const std::vector<float>& coeffs, std::size_t width,
              std::size_t height) {
  const auto& ct = cos_table();
  const auto& alpha = alpha_table();
  const std::size_t blocks_x = width / kBlock;
  const std::size_t blocks_y = height / kBlock;
  Image out(width, height);
  for (std::size_t by = 0; by < blocks_y; ++by) {
    for (std::size_t bx = 0; bx < blocks_x; ++bx) {
      const float* block = coeffs.data() + (by * blocks_x + bx) * kBlock * kBlock;
      for (std::size_t y = 0; y < kBlock; ++y) {
        for (std::size_t x = 0; x < kBlock; ++x) {
          double acc = 0.0;
          for (std::size_t v = 0; v < kBlock; ++v) {
            for (std::size_t u = 0; u < kBlock; ++u) {
              acc += alpha[u] * alpha[v] * block[v * kBlock + u] *
                     ct[u * kBlock + x] * ct[v * kBlock + y];
            }
          }
          const double p = acc + 128.0;
          out.at(bx * kBlock + x, by * kBlock + y) = static_cast<std::uint8_t>(
              p < 0.0 ? 0.0 : (p > 255.0 ? 255.0 : std::lround(p)));
        }
      }
    }
  }
  return out;
}

RunResult run(const Options& options, Image* out) {
  RunResult result;
  result.app = "dct";
  result.quality_metric = "PSNR^-1";

  const Image input = support::synthetic_image(options.width, options.height,
                                               options.common.seed);
  const std::vector<float> ref = reference(input);
  const Image ref_img = inverse(ref, input.width(), input.height());

  const double ratio = options.ratio_override >= 0.0
                           ? options.ratio_override
                           : ratio_for(options.common.degree);
  const std::size_t blocks_x = input.width() / kBlock;
  const std::size_t blocks_y = input.height() / kBlock;

  std::vector<float> coeffs(blocks_x * blocks_y * kBlock * kBlock, 0.0f);
  float* cf = coeffs.data();
  const std::size_t stripe_floats = blocks_x * kBlock * kBlock;

  run_measured(options.common, result, [&](Runtime& rt) {
    const GroupId g = rt.create_group("dct", ratio);
    if (options.common.variant == Variant::Perforated) {
      // Blind perforation over the flat (stripe, band) task index space:
      // no notion of which bands matter, so DC bands get dropped too.
      perforation::for_each(
          0, blocks_y * kBands, 1.0 - ratio, [&](std::size_t idx) {
            const std::size_t by = idx / kBands;
            const std::size_t band = idx % kBands;
            rt.spawn(task([=, &input] { band_task(cf, input, blocks_x, by, band); })
                         .group(g)
                         .in(input.data(), input.size())
                         .out(cf + by * stripe_floats, stripe_floats));
          });
    } else {
      for (std::size_t by = 0; by < blocks_y; ++by) {
        for (std::size_t band = 0; band < kBands; ++band) {
          // Drop benchmark: no approxfun — an approximated task leaves its
          // band's coefficients zero.
          rt.spawn(task([=, &input] { band_task(cf, input, blocks_x, by, band); })
                       .significance(band_significance(band))
                       .group(g)
                       .in(input.data(), input.size())
                       .out(cf + by * stripe_floats, stripe_floats));
        }
      }
    }
    rt.wait_group(g);
  });

  Image out_img = inverse(coeffs, input.width(), input.height());
  const double psnr = metrics::psnr_db(ref_img, out_img);
  result.quality = metrics::inverse_psnr(psnr);
  result.quality_aux = psnr;
  if (out != nullptr) *out = std::move(out_img);
  return result;
}

}  // namespace sigrt::apps::dct
