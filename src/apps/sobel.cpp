#include "apps/sobel.hpp"

#include <algorithm>

#include "apps/kernels.hpp"
#include "metrics/quality.hpp"
#include "perforation/perforate.hpp"

namespace sigrt::apps::sobel {

namespace {

using support::Image;

// Row task bodies dispatch to the SIMD kernel layer (kernels.hpp): the
// accurate variant keeps Listing 1's full taps and sqrt(sx^2+sy^2) magnitude,
// the approximate variant the reduced taps and |sx|+|sy| — vectorized
// SSE2/AVX2/NEON with a scalar fallback, byte-identical across levels.

void sbl_task(std::uint8_t* res, const std::uint8_t* img, std::size_t w,
              std::size_t row) {
  kern::sobel_row_accurate(res, img, w, row, 1, w - 1);
}

// Listing 1: significance cycles over rows so approximated rows are spread
// uniformly and the special values 0.0 / 1.0 are avoided.
double row_significance(std::size_t row) {
  return static_cast<double>(row % 9 + 1) / 10.0;
}

// Auto task granularity: one row per task while a full-width strip of a
// one-row band stays L2-resident (the row-major pass then reuses the halo
// for free and banding would only coarsen significance), 8-row bands once
// the image is wide enough that kernels.hpp has to column-tile.
std::size_t band_rows_for(std::size_t w) {
  return kern::sobel_tile_cols(w, 1) >= w ? 1 : 8;
}

}  // namespace

double ratio_for(Degree degree) noexcept {
  switch (degree) {
    case Degree::Mild: return 0.80;
    case Degree::Medium: return 0.30;
    case Degree::Aggressive: return 0.0;
  }
  return 1.0;
}

Image reference(const Image& input) {
  Image out(input.width(), input.height());
  if (input.height() >= 2) {
    // Column-tiled band pass: byte-identical to the row loop (same
    // dispatched kernels), cache-resident for arbitrarily wide images.
    kern::sobel_band_accurate(out.data(), input.data(), input.width(), 1,
                              input.height() - 1);
  }
  return out;
}

Image reference_approx(const Image& input) {
  Image out(input.width(), input.height());
  if (input.height() >= 2) {
    kern::sobel_band_approx(out.data(), input.data(), input.width(), 1,
                            input.height() - 1);
  }
  return out;
}

RunResult run(const Options& options, Image* out) {
  RunResult result;
  result.app = "sobel";
  result.quality_metric = "PSNR^-1";

  const Image input = support::synthetic_image(options.width, options.height,
                                               options.common.seed);
  const Image ref = reference(input);

  const double ratio = options.ratio_override >= 0.0
                           ? options.ratio_override
                           : ratio_for(options.common.degree);
  const std::size_t w = input.width();
  const std::size_t h = input.height();

  Image output(w, h);
  const std::uint8_t* img = input.data();
  std::uint8_t* res = output.data();

  run_measured(options.common, result, [&](Runtime& rt) {
    const GroupId g = rt.create_group("sobel", ratio);
    for (unsigned rep = 0; rep < options.repeats; ++rep) {
      if (options.common.variant == Variant::Perforated) {
        // Blind perforation of the row loop at rate (1 - ratio): surviving
        // rows run as accurate tasks, skipped rows are never computed.
        perforation::for_each(1, h - 1, 1.0 - ratio, [&](std::size_t i) {
          rt.spawn(task([=] { sbl_task(res, img, w, i); })
                       .group(g)
                       .in(img, w * h)
                       .out(res + i * w, w));
        });
      } else {
        // One task per band (band == 1 row for ordinary widths — the
        // historical per-row shape).  The band body walks column strips so
        // the strip halo stays L2-resident on wide images.
        const std::size_t band =
            options.band_rows != 0 ? options.band_rows : band_rows_for(w);
        for (std::size_t y0 = 1; y0 + 1 < h; y0 += band) {
          const std::size_t y1 = std::min(y0 + band, h - 1);
          rt.spawn(
              task([=] { kern::sobel_band_accurate(res, img, w, y0, y1); })
                  .approx(
                      [=] { kern::sobel_band_approx(res, img, w, y0, y1); })
                  .significance(row_significance(y0))
                  .group(g)
                  .in(img, w * h)
                  .out(res + y0 * w, (y1 - y0) * w));
        }
      }
      rt.wait_group(g);  // taskwait label(sobel) ratio(...)
    }
  });

  const double psnr = metrics::psnr_db(ref, output);
  result.quality = metrics::inverse_psnr(psnr);
  result.quality_aux = psnr;
  if (out != nullptr) *out = std::move(output);
  return result;
}

}  // namespace sigrt::apps::sobel
