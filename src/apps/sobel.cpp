#include "apps/sobel.hpp"

#include "apps/kernels.hpp"
#include "metrics/quality.hpp"
#include "perforation/perforate.hpp"

namespace sigrt::apps::sobel {

namespace {

using support::Image;

// Row task bodies dispatch to the SIMD kernel layer (kernels.hpp): the
// accurate variant keeps Listing 1's full taps and sqrt(sx^2+sy^2) magnitude,
// the approximate variant the reduced taps and |sx|+|sy| — vectorized
// SSE2/AVX2/NEON with a scalar fallback, byte-identical across levels.

void sbl_task(std::uint8_t* res, const std::uint8_t* img, std::size_t w,
              std::size_t row) {
  kern::sobel_row_accurate(res, img, w, row, 1, w - 1);
}

void sbl_task_appr(std::uint8_t* res, const std::uint8_t* img, std::size_t w,
                   std::size_t row) {
  kern::sobel_row_approx(res, img, w, row, 1, w - 1);
}

// Listing 1: significance cycles over rows so approximated rows are spread
// uniformly and the special values 0.0 / 1.0 are avoided.
double row_significance(std::size_t row) {
  return static_cast<double>(row % 9 + 1) / 10.0;
}

}  // namespace

double ratio_for(Degree degree) noexcept {
  switch (degree) {
    case Degree::Mild: return 0.80;
    case Degree::Medium: return 0.30;
    case Degree::Aggressive: return 0.0;
  }
  return 1.0;
}

Image reference(const Image& input) {
  Image out(input.width(), input.height());
  for (std::size_t y = 1; y + 1 < input.height(); ++y) {
    sbl_task(out.data(), input.data(), input.width(), y);
  }
  return out;
}

Image reference_approx(const Image& input) {
  Image out(input.width(), input.height());
  for (std::size_t y = 1; y + 1 < input.height(); ++y) {
    sbl_task_appr(out.data(), input.data(), input.width(), y);
  }
  return out;
}

RunResult run(const Options& options, Image* out) {
  RunResult result;
  result.app = "sobel";
  result.quality_metric = "PSNR^-1";

  const Image input = support::synthetic_image(options.width, options.height,
                                               options.common.seed);
  const Image ref = reference(input);

  const double ratio = options.ratio_override >= 0.0
                           ? options.ratio_override
                           : ratio_for(options.common.degree);
  const std::size_t w = input.width();
  const std::size_t h = input.height();

  Image output(w, h);
  const std::uint8_t* img = input.data();
  std::uint8_t* res = output.data();

  run_measured(options.common, result, [&](Runtime& rt) {
    const GroupId g = rt.create_group("sobel", ratio);
    for (unsigned rep = 0; rep < options.repeats; ++rep) {
      if (options.common.variant == Variant::Perforated) {
        // Blind perforation of the row loop at rate (1 - ratio): surviving
        // rows run as accurate tasks, skipped rows are never computed.
        perforation::for_each(1, h - 1, 1.0 - ratio, [&](std::size_t i) {
          rt.spawn(task([=] { sbl_task(res, img, w, i); })
                       .group(g)
                       .in(img, w * h)
                       .out(res + i * w, w));
        });
      } else {
        for (std::size_t i = 1; i + 1 < h; ++i) {
          rt.spawn(task([=] { sbl_task(res, img, w, i); })
                       .approx([=] { sbl_task_appr(res, img, w, i); })
                       .significance(row_significance(i))
                       .group(g)
                       .in(img, w * h)
                       .out(res + i * w, w));
        }
      }
      rt.wait_group(g);  // taskwait label(sobel) ratio(...)
    }
  });

  const double psnr = metrics::psnr_db(ref, output);
  result.quality = metrics::inverse_psnr(psnr);
  result.quality_aux = psnr;
  if (out != nullptr) *out = std::move(output);
  return result;
}

}  // namespace sigrt::apps::sobel
