// MC benchmark: Monte Carlo estimation of a PDE sub-domain boundary
// (§4.1, after Vavalis & Sarailidis [24]).
//
// Setting: the Laplace equation on the unit square with a harmonic boundary
// condition g(x,y) = x^2 - y^2 + x.  The hybrid-solver use case needs the
// solution u on the boundary of an interior sub-domain (a circle); since u
// is harmonic, u(p) equals the expected boundary value hit by a random walk
// from p.  Each task estimates u at one sub-domain boundary point via
// walk-on-spheres.
//
// Approximation (Table 1: "D, A"): the approxfun performs a fraction of the
// walks with a cheaper stepping rule — L-inf (square) steps instead of
// exact circle radii, and a looser capture band — i.e. it *drops a
// percentage of the random walks* and uses a *lighter methodology to decide
// how far the next step goes*, per the paper's description.
// Degrees: ratio 1.0 / 0.8 / 0.5 of tasks accurate.
// Quality: mean relative error of the estimates vs the accurate execution.
#pragma once

#include <vector>

#include "apps/common.hpp"

namespace sigrt::apps::mc {

struct Options {
  std::size_t points = 128;       ///< sub-domain boundary sample points
  std::size_t walks = 1500;       ///< random walks per point (accurate)
  double approx_walk_fraction = 0.25;  ///< fraction of walks the approxfun keeps
  CommonOptions common;
  double ratio_override = -1.0;
};

[[nodiscard]] double ratio_for(Degree degree) noexcept;

/// The harmonic boundary condition; also the exact solution everywhere.
[[nodiscard]] double boundary_value(double x, double y) noexcept;

/// Serial accurate estimates at every sub-domain boundary point.
[[nodiscard]] std::vector<double> reference(const Options& options);

RunResult run(const Options& options, std::vector<double>* out = nullptr);

}  // namespace sigrt::apps::mc
