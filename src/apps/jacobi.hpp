// Jacobi iterative solver benchmark (§4.1).
//
// Solves A x = b for a dense diagonally dominant system.  One task updates
// one block of rows per sweep.  Per the paper: the first five sweeps run
// approximately — the approxfun restricts each row update to a band around
// the diagonal, i.e. it "drops the computations corresponding to the upper
// right and lower left areas of the matrix", which is benign because the
// matrix is diagonally dominant — and every later sweep runs accurately,
// but against a relaxed convergence tolerance.
//
// Degrees (Table 1): tolerance 1e-4 / 1e-3 / 1e-2; the native (accurate)
// execution converges to 1e-5.  Quality: relative L2 error of the solution
// vs the accurate execution's solution.
#pragma once

#include <vector>

#include "apps/common.hpp"
#include "perforation/perforate.hpp"

namespace sigrt::apps::jacobi {

struct Options {
  std::size_t n = 1024;          ///< unknowns
  std::size_t row_block = 64;    ///< rows per task
  std::size_t approx_sweeps = 5; ///< leading sweeps run at ratio 0
  std::size_t band = 128;        ///< approxfun half-bandwidth
  std::size_t max_sweeps = 200;
  double native_tolerance = 1e-5;
  CommonOptions common;
  /// Perforation comparator: fraction of row-block tasks skipped per sweep.
  /// The Figure 2 harness sets this to (1 - provided_ratio) of the GTB run
  /// so the perforated version "executes the same number of tasks" (§4.1).
  double perforation_rate = 0.25;
  /// Shape of the perforated inner accumulation loop.  Block (the default)
  /// drops aligned column blocks so the surviving runs stay dense vector
  /// spans; Modulo reproduces the classic scattered-column comparator,
  /// which defeats vectorization.
  perforation::Shape perforation_shape = perforation::Shape::Block;
  /// Column-block stride for Shape::Block (multiple of the vector width).
  std::size_t perforation_block = perforation::kDefaultBlock;
};

[[nodiscard]] double tolerance_for(Degree degree) noexcept;

struct Solution {
  std::vector<double> x;
  std::size_t sweeps = 0;
};

/// Serial accurate reference at the native tolerance.
[[nodiscard]] Solution reference(const Options& options);

RunResult run(const Options& options, Solution* out = nullptr);

}  // namespace sigrt::apps::jacobi
