// Shared vocabulary of the six benchmark applications (§4.1, Table 1).
//
// Every app exposes  RunResult run_<app>(const <App>Options&)  which builds
// the (seeded, deterministic) input, executes the requested variant under a
// freshly configured runtime, measures wall time and energy, and evaluates
// output quality against a fully accurate execution of the same input.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/runtime.hpp"
#include "core/types.hpp"

namespace sigrt::apps {

/// The three approximation degrees studied per benchmark (Table 1).
enum class Degree : std::uint8_t { Mild, Medium, Aggressive };

[[nodiscard]] constexpr const char* to_string(Degree d) noexcept {
  switch (d) {
    case Degree::Mild: return "Mild";
    case Degree::Medium: return "Medium";
    case Degree::Aggressive: return "Aggr";
  }
  return "?";
}

inline constexpr Degree kAllDegrees[] = {Degree::Aggressive, Degree::Medium,
                                         Degree::Mild};

/// Execution variants compared in Figure 2.
enum class Variant : std::uint8_t {
  Accurate,      ///< significance-agnostic runtime, everything accurate
  GTB,           ///< bounded-buffer Global Task Buffering
  GTBMaxBuffer,  ///< GTB buffering until the barrier
  LQH,           ///< Local Queue History
  Perforated,    ///< blind loop perforation comparator [19]
};

[[nodiscard]] constexpr const char* to_string(Variant v) noexcept {
  switch (v) {
    case Variant::Accurate: return "accurate";
    case Variant::GTB: return "GTB";
    case Variant::GTBMaxBuffer: return "GTB(MaxBuf)";
    case Variant::LQH: return "LQH";
    case Variant::Perforated: return "perforation";
  }
  return "?";
}

inline constexpr Variant kPolicyVariants[] = {Variant::GTB, Variant::GTBMaxBuffer,
                                              Variant::LQH};

[[nodiscard]] constexpr PolicyKind policy_for(Variant v) noexcept {
  switch (v) {
    case Variant::GTB: return PolicyKind::GTB;
    case Variant::GTBMaxBuffer: return PolicyKind::GTBMaxBuffer;
    case Variant::LQH: return PolicyKind::LQH;
    case Variant::Accurate:
    case Variant::Perforated: return PolicyKind::Agnostic;
  }
  return PolicyKind::Agnostic;
}

/// Options shared by every app.
struct CommonOptions {
  Variant variant = Variant::GTB;
  Degree degree = Degree::Mild;
  unsigned workers = RuntimeConfig::default_workers();
  std::size_t gtb_buffer = 16;   ///< bounded-GTB window size
  unsigned lqh_levels = 101;     ///< LQH discrete significance levels
  bool steal = true;             ///< work stealing between worker queues
  unsigned unreliable_workers = 0;     ///< NTC cores (§6 extension)
  double unreliable_fault_rate = 0.0;  ///< silent-failure probability on NTC
  std::uint64_t seed = 42;
};

/// One measured execution; the unit the Figure 2 / Table 2 harnesses print.
struct RunResult {
  std::string app;
  std::string variant;
  std::string degree;

  double time_s = 0.0;
  double energy_j = 0.0;

  /// Quality value where *lower is better*, as plotted in Figure 2:
  /// PSNR^-1 for Sobel/DCT, relative error for the others.
  double quality = 0.0;
  std::string quality_metric;  ///< "PSNR^-1" or "rel.err"

  /// Auxiliary quality view (PSNR in dB for the image benchmarks; equals
  /// `quality` for the relative-error benchmarks).
  double quality_aux = 0.0;

  std::uint64_t tasks_total = 0;
  std::uint64_t tasks_accurate = 0;
  std::uint64_t tasks_approximate = 0;
  std::uint64_t tasks_dropped = 0;

  /// Scheduler-level observables of the run: successful steals (deque
  /// steals + inbox raids) and end-to-end task throughput.
  std::uint64_t steals = 0;
  double tasks_per_sec = 0.0;

  double requested_ratio = 1.0;      ///< mean ratio() over classifications
  double provided_ratio = 1.0;       ///< fraction actually accurate
  double ratio_diff = 0.0;           ///< |requested - provided| (Table 2)
  double inversion_fraction = 0.0;   ///< Table 2's inversed-significance metric
};

/// Builds the RuntimeConfig for a variant (policy mapping, worker count).
[[nodiscard]] RuntimeConfig runtime_config_for(const CommonOptions& common);

/// Runs `work` against a fresh runtime configured for `common`, measuring
/// wall time and energy across the call (work + final barrier), and fills
/// the scheduling fields of `result` from the runtime's group reports.
///
/// The Perforated variant also goes through here: per §4.1 the perforated
/// comparator "executes the same number of tasks as those executed
/// accurately by our approach", i.e. it spawns the surviving tasks into the
/// significance-agnostic runtime.
void run_measured(const CommonOptions& common, RunResult& result,
                  const std::function<void(Runtime&)>& work);

}  // namespace sigrt::apps
