// 8x8 block DCT benchmark (JPEG-style forward transform, §4.1).
//
// The image is processed in 8x8 blocks.  Coefficients are grouped into 15
// zig-zag diagonals (u+v = 0..14); one task computes one diagonal band for
// one stripe of blocks.  Lower-frequency bands get higher significance —
// the paper's "layers of significance" decomposition — with the DC band
// pinned at significance 1.0 (unconditionally accurate).
//
// DCT is a *drop* benchmark (Table 1: "D"): approximated tasks have no
// approxfun, so their coefficients stay zero, exactly like JPEG truncating
// high-frequency content.  Degrees: ratio 0.8 / 0.4 / 0.1.
// Quality: PSNR between the images reconstructed (IDCT) from the candidate
// and the fully accurate coefficient sets.
#pragma once

#include <vector>

#include "apps/common.hpp"
#include "support/image.hpp"

namespace sigrt::apps::dct {

inline constexpr std::size_t kBlock = 8;
inline constexpr std::size_t kBands = 2 * kBlock - 1;  // u+v diagonals

struct Options {
  std::size_t width = 512;   ///< multiple of 8
  std::size_t height = 512;  ///< multiple of 8
  CommonOptions common;
  double ratio_override = -1.0;
};

[[nodiscard]] double ratio_for(Degree degree) noexcept;

/// Significance of a diagonal band (1.0 for DC, decreasing with frequency).
[[nodiscard]] double band_significance(std::size_t band) noexcept;

/// Forward 8x8 DCT of the whole image, serial accurate reference.
/// Coefficients are stored block-row-major: blocks[by][bx][v][u].
[[nodiscard]] std::vector<float> reference(const support::Image& input);

/// Inverse transform back to an image (for PSNR evaluation).
[[nodiscard]] support::Image inverse(const std::vector<float>& coeffs,
                                     std::size_t width, std::size_t height);

RunResult run(const Options& options, support::Image* out = nullptr);

}  // namespace sigrt::apps::dct
