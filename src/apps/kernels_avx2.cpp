// AVX2+FMA kernel instantiation.  CMake compiles this TU with -mavx2 -mfma
// on x86 when the compiler supports it; anywhere else (or under
// -DSIGRT_SIMD_FORCE=scalar, which drops the flags) the guards fail and the
// TU only exports a null table — dispatch then falls back to SSE2/scalar.
// Runtime CPUID gating lives in support::simd::detected(), so a binary that
// carries this table never executes it on hardware without AVX2+FMA.
#include "apps/kernels.hpp"

#if !defined(SIGRT_SIMD_FORCE_SCALAR) && defined(__AVX2__) && defined(__FMA__)

#define SIGRT_KIMPL_NS avx2
#define SIGRT_KIMPL_LEVEL 2
#define SIGRT_KIMPL_ISA ::sigrt::support::simd::Isa::AVX2
#define SIGRT_KIMPL_TABLE_FN detail::table_avx2
#include "apps/kernels_impl.inl"

#else

namespace sigrt::apps::kern {
const KernelTable* detail::table_avx2() noexcept { return nullptr; }
}  // namespace sigrt::apps::kern

#endif
