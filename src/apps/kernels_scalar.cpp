// Scalar kernel instantiation — always compiled, the dispatch fallback for
// every level that is missing from the binary (and the only level under
// -DSIGRT_SIMD_FORCE=scalar).
#define SIGRT_KIMPL_NS scalar
#define SIGRT_KIMPL_LEVEL 0
#define SIGRT_KIMPL_ISA ::sigrt::support::simd::Isa::Scalar
#define SIGRT_KIMPL_TABLE_FN detail::table_scalar
#include "apps/kernels_impl.inl"
