#include "apps/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "apps/kernels.hpp"
#include "metrics/quality.hpp"
#include "perforation/perforate.hpp"
#include "support/rng.hpp"

namespace sigrt::apps::kmeans {

namespace {

/// Synthetic observations: `clusters` Gaussian blobs whose centers are
/// separated along *every* dimension (center c sits at a distinct offset in
/// each axis).  This mirrors the paper's setting where a 1/8-dimension
/// approximate distance still assigns points essentially correctly, giving
/// the sub-percent relative errors of Figure 2.
std::vector<double> make_points(const Options& opt) {
  support::Xoshiro256 rng(opt.common.seed);
  std::vector<double> centers(opt.clusters * opt.dims);
  for (std::size_t c = 0; c < opt.clusters; ++c) {
    const double base =
        (static_cast<double>(c) - static_cast<double>(opt.clusters - 1) / 2.0) * 8.0;
    for (std::size_t d = 0; d < opt.dims; ++d) {
      centers[c * opt.dims + d] = base + rng.uniform(-1.0, 1.0);
    }
  }

  std::vector<double> pts(opt.points * opt.dims);
  for (std::size_t i = 0; i < opt.points; ++i) {
    const std::size_t c = i % opt.clusters;
    for (std::size_t d = 0; d < opt.dims; ++d) {
      // sigma 2.2 against an 8.0 center spacing: blobs overlap slightly, so
      // boundary points keep switching for a few iterations.
      pts[i * opt.dims + d] = centers[c * opt.dims + d] + 2.2 * rng.normal();
    }
  }
  return pts;
}

std::vector<double> initial_centroids(const Options& opt,
                                      const std::vector<double>& pts) {
  // Deterministic pseudo-random picks (identical across variants).  A
  // strided selection lands several seeds in one blob, so Lloyd needs a
  // non-trivial number of iterations to untangle them — without it the
  // blobs' own structure would converge in two iterations and the policies
  // would have nothing to differentiate on.
  std::vector<double> c(opt.clusters * opt.dims);
  for (std::size_t k = 0; k < opt.clusters; ++k) {
    const std::size_t pick = (k * 37 + 11) % opt.points;
    for (std::size_t d = 0; d < opt.dims; ++d) {
      c[k * opt.dims + d] = pts[pick * opt.dims + d];
    }
  }
  return c;
}

// Distance inner loops dispatch to the SIMD kernel layer: the accurate
// assignment uses the full squared euclidean distance, the approximate one
// "a simpler version of the euclidean distance, considering only a subset
// (1/8) of the dimensions" (§4.1) — same kernel, use_dims = dims/8 (the
// accurate path already elides the sqrt, so the saving is the 8x cut).

std::size_t nearest_full(const double* p, const double* centroids,
                         std::size_t k, std::size_t dims) {
  return kern::nearest_centroid(p, centroids, k, dims, dims);
}

std::size_t nearest_approx(const double* p, const double* centroids,
                           std::size_t k, std::size_t dims) {
  const std::size_t sub = std::max<std::size_t>(1, dims / 8);
  return kern::nearest_centroid(p, centroids, k, dims, sub);
}

/// Mutable per-iteration workspace shared by the task bodies.
struct Workspace {
  const Options* opt = nullptr;
  const std::vector<double>* pts = nullptr;
  std::vector<double> centroids;
  std::vector<std::size_t> assignment;
  std::size_t chunks = 0;
  std::vector<double> partial_sums;        // chunks x (k*dims)
  std::vector<std::uint32_t> partial_count;  // chunks x k
  std::vector<std::uint32_t> moved;          // per chunk
  std::vector<std::uint8_t> processed;       // 0 = skipped, 1 = approx, 2 = accurate

  [[nodiscard]] std::size_t chunk_begin(std::size_t c) const {
    return c * opt->chunk;
  }
  [[nodiscard]] std::size_t chunk_end(std::size_t c) const {
    return std::min(opt->points, (c + 1) * opt->chunk);
  }
};

void chunk_task(Workspace& ws, std::size_t c, bool accurate) {
  const Options& opt = *ws.opt;
  const std::size_t kd = opt.clusters * opt.dims;
  double* sums = ws.partial_sums.data() + c * kd;
  std::uint32_t* counts = ws.partial_count.data() + c * opt.clusters;
  std::uint32_t local_moved = 0;

  for (std::size_t i = ws.chunk_begin(c); i < ws.chunk_end(c); ++i) {
    const double* p = ws.pts->data() + i * opt.dims;
    const std::size_t best =
        accurate ? nearest_full(p, ws.centroids.data(), opt.clusters, opt.dims)
                 : nearest_approx(p, ws.centroids.data(), opt.clusters, opt.dims);
    if (ws.assignment[i] != best) {
      ++local_moved;
      ws.assignment[i] = best;
    }
    double* s = sums + best * opt.dims;
    for (std::size_t d = 0; d < opt.dims; ++d) s[d] += p[d];
    ++counts[best];
  }
  ws.moved[c] = local_moved;
  ws.processed[c] = accurate ? 2 : 1;
}

/// Master-side reduction of the chunk partials into new centroids.
/// Returns the number of accurately observed membership moves.
std::size_t reduce_iteration(Workspace& ws) {
  const Options& opt = *ws.opt;
  const std::size_t kd = opt.clusters * opt.dims;
  std::vector<double> sums(kd, 0.0);
  std::vector<std::uint64_t> counts(opt.clusters, 0);
  std::size_t moved_accurate = 0;

  for (std::size_t c = 0; c < ws.chunks; ++c) {
    if (ws.processed[c] == 0) continue;
    const double* s = ws.partial_sums.data() + c * kd;
    const std::uint32_t* cnt = ws.partial_count.data() + c * opt.clusters;
    for (std::size_t j = 0; j < kd; ++j) sums[j] += s[j];
    for (std::size_t k = 0; k < opt.clusters; ++k) counts[k] += cnt[k];
    if (ws.processed[c] == 2) moved_accurate += ws.moved[c];
  }
  for (std::size_t k = 0; k < opt.clusters; ++k) {
    if (counts[k] == 0) continue;  // empty cluster keeps its centroid
    for (std::size_t d = 0; d < opt.dims; ++d) {
      ws.centroids[k * opt.dims + d] =
          sums[k * opt.dims + d] / static_cast<double>(counts[k]);
    }
  }
  return moved_accurate;
}

void clear_iteration(Workspace& ws) {
  std::fill(ws.partial_sums.begin(), ws.partial_sums.end(), 0.0);
  std::fill(ws.partial_count.begin(), ws.partial_count.end(), 0u);
  std::fill(ws.moved.begin(), ws.moved.end(), 0u);
  std::fill(ws.processed.begin(), ws.processed.end(), std::uint8_t{0});
}

Workspace make_workspace(const Options& opt, const std::vector<double>& pts) {
  Workspace ws;
  ws.opt = &opt;
  ws.pts = &pts;
  ws.centroids = initial_centroids(opt, pts);
  ws.assignment.assign(opt.points, 0);
  ws.chunks = (opt.points + opt.chunk - 1) / opt.chunk;
  ws.partial_sums.assign(ws.chunks * opt.clusters * opt.dims, 0.0);
  ws.partial_count.assign(ws.chunks * opt.clusters, 0u);
  ws.moved.assign(ws.chunks, 0u);
  ws.processed.assign(ws.chunks, std::uint8_t{0});
  return ws;
}

}  // namespace

double ratio_for(Degree degree) noexcept {
  switch (degree) {
    case Degree::Mild: return 0.80;
    case Degree::Medium: return 0.60;
    case Degree::Aggressive: return 0.40;
  }
  return 1.0;
}

Solution reference(const Options& options) {
  const std::vector<double> pts = make_points(options);
  Workspace ws = make_workspace(options, pts);
  Solution sol;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    clear_iteration(ws);
    for (std::size_t c = 0; c < ws.chunks; ++c) chunk_task(ws, c, true);
    const std::size_t moved = reduce_iteration(ws);
    ++sol.iterations;
    if (it > 0 && static_cast<double>(moved) <
                      options.converge_fraction *
                          static_cast<double>(options.points)) {
      break;
    }
  }
  sol.centroids = ws.centroids;
  return sol;
}

RunResult run(const Options& options, Solution* out) {
  RunResult result;
  result.app = "kmeans";
  result.quality_metric = "rel.err";

  const std::vector<double> pts = make_points(options);
  const Solution ref = reference(options);

  const double ratio = options.ratio_override >= 0.0
                           ? options.ratio_override
                           : ratio_for(options.common.degree);

  Workspace ws = make_workspace(options, pts);
  Solution sol;

  run_measured(options.common, result, [&](Runtime& rt) {
    const GroupId g = rt.create_group("kmeans", ratio);
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
      clear_iteration(ws);
      if (options.common.variant == Variant::Perforated) {
        // Blind perforation: process only ratio*chunks chunks per
        // iteration, accurately; skipped chunks contribute nothing.
        perforation::for_each(0, ws.chunks, 1.0 - ratio, [&](std::size_t c) {
          rt.spawn(task([&ws, c] { chunk_task(ws, c, true); }).group(g));
        });
      } else {
        for (std::size_t c = 0; c < ws.chunks; ++c) {
          // Uniform significance: the ratio() knob alone steers quality.
          rt.spawn(task([&ws, c] { chunk_task(ws, c, true); })
                       .approx([&ws, c] { chunk_task(ws, c, false); })
                       .significance(0.5)
                       .group(g));
        }
      }
      rt.wait_group(g);

      const std::size_t moved = reduce_iteration(ws);
      ++sol.iterations;
      // Approximately-computed objects do not participate in the
      // termination criterion (§4.1).
      if (it > 0 && static_cast<double>(moved) <
                        options.converge_fraction *
                            static_cast<double>(options.points)) {
        break;
      }
    }
  });

  sol.centroids = ws.centroids;
  result.quality = metrics::relative_l2_error(ref.centroids, sol.centroids);
  result.quality_aux = result.quality;
  if (out != nullptr) *out = std::move(sol);
  return result;
}

}  // namespace sigrt::apps::kmeans
