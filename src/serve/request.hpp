// Request vocabulary of the serving layer.
//
// A RequestClass binds a request type (a sobel job, a dct job, ...) to one
// runtime task group, a latency deadline and a quality floor; the Server
// keeps one QosController per class closing the loop between observed load
// and the group's ratio() knob.  Requests are significance-carrying jobs:
// the accurate body is the full-quality response, the optional approximate
// body the degraded one (absent => a "drop"-style class that answers with
// an empty/partial result when degraded, like DCT truncating bands).
//
// Requests additionally carry a *tenant*: admission is per-tenant x
// per-class, so one tenant's overload sheds its own Degradable/BestEffort
// traffic before another tenant's Critical class feels anything (see
// Server::submit), and a *deadline*: within a class the dispatcher issues
// admitted requests in earliest-deadline-first order, so the p99 the
// QosController regulates reflects urgency, not arrival order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/qos_controller.hpp"
#include "support/spinlock.hpp"

namespace sigrt::serve {

using ClassId = std::uint32_t;
using TenantId = std::uint32_t;

/// Tenant 0 always exists: submissions without a tenant land here.  Its
/// default quotas are effectively unbounded, so single-tenant callers see
/// exactly the per-class admission semantics.
inline constexpr TenantId kDefaultTenant = 0;

/// How a class's traffic behaves when its tenant is over its fairness
/// watermark (see TenantConfig::fair_in_flight).  Ordered by protection:
/// BestEffort sheds first, Degradable degrades, Critical is untouched up to
/// the tenant's hard quota.
enum class Criticality : std::uint8_t {
  Critical,    ///< admitted at full quality while the tenant is under quota
  Degradable,  ///< served through the approximate body when over the share
  BestEffort,  ///< shed outright when over the share
};

[[nodiscard]] constexpr const char* to_string(Criticality c) noexcept {
  switch (c) {
    case Criticality::Critical: return "critical";
    case Criticality::Degradable: return "degradable";
    case Criticality::BestEffort: return "besteffort";
  }
  return "?";
}

/// Static configuration of one request class.
struct RequestClassConfig {
  std::string name;

  /// Deadline, AIMD gains and backlog watermarks of the class controller.
  QosOptions qos;

  /// How this class's traffic yields when its *tenant* is over the fairness
  /// watermark.  Class-level watermarks below apply regardless.
  Criticality criticality = Criticality::Degradable;

  /// Admission bound: submissions while `max_in_flight` requests of this
  /// class are admitted-but-uncompleted are shed (rung 3 of the ladder).
  std::size_t max_in_flight = 1024;

  /// Degrade watermark: submissions above this in-flight depth are admitted
  /// but served through the approximate body regardless of classification.
  /// 0 disables the watermark.
  std::size_t degrade_in_flight = 0;

  /// Declare that this class's bodies may block on external I/O (backend
  /// calls, disk).  The server then opens a Runtime BlockingSection around
  /// each body: the worker slot is handed to a spare thread for the
  /// blocking span, so one stalled request no longer idles a core.  Leave
  /// false for pure-compute classes — the handoff costs a mutex hop per
  /// request.
  bool may_block = false;

  /// Shed admitted requests at EDF pop time when their absolute deadline
  /// has already passed (the answer would be useless to the client): the
  /// request is never spawned, `on_expire` — falling back to `on_drop` —
  /// answers, and the class `expired` counter grows.  Opt-in because
  /// classes whose clients still want late answers (batch work, tests
  /// asserting exact served counts) must keep serving them.
  bool shed_expired = false;

  /// Per-request watchdog budget: an issued request still unresolved this
  /// many nanoseconds after dispatch is force-completed as a drop (its
  /// `on_timeout` — falling back to `on_drop` — answers the client) so a
  /// stuck or faulted body can never leak an in-flight slot.  The sweep
  /// rides the QoS controller tick, so it requires ServerOptions::epoch_ms
  /// > 0; granularity is one epoch.  0 disables the watchdog.
  std::int64_t watchdog_ns = 0;
};

/// Static configuration of one tenant.  Quotas count the tenant's in-flight
/// requests across every class, so a tenant flooding one class consumes its
/// own budget, not the budget of the others.  Isolation is complete when
/// the sum of tenant hard quotas stays within each class's max_in_flight
/// (then the shared class bound never binds for a compliant tenant).
struct TenantConfig {
  std::string name;

  /// Hard quota: submissions while this many of the tenant's requests are
  /// in flight are shed, whatever the class's criticality.
  std::size_t max_in_flight = static_cast<std::size_t>(1) << 40;

  /// Fairness watermark (soft share).  Above it the tenant's BestEffort
  /// submissions are shed and its Degradable submissions are admitted
  /// degraded; Critical traffic is untouched until the hard quota.
  /// 0 disables the watermark.
  std::size_t fair_in_flight = 0;
};

/// One unit of client work.  Exactly one of the two bodies runs per request
/// — unless the request is dropped without running any body (dispatcher
/// perforation, or shutdown racing the submit), in which case `on_drop`
/// fires instead.
struct Job {
  std::function<void()> accurate;     ///< required: full-quality response
  std::function<void()> approximate;  ///< optional: degraded response

  /// Paper semantics apply at request granularity: 1.0 pins the request
  /// accurate, <= 0.0 pins it approximate.  The default sits mid-scale so
  /// requests are degradable out of the box.
  double significance = 0.5;

  /// Fires (on the dispatcher thread — keep it cheap and non-blocking) when
  /// an *admitted* request is dropped without a body running: perforation
  /// rung 2, or a shutdown shed.  Network frontends use it to answer the
  /// client instead of leaving the connection hanging.  Optional.
  std::function<void()> on_drop;

  /// Fires (on a dispatcher thread) when the request is shed at EDF pop
  /// time because its deadline already passed — it was never spawned.
  /// Falls back to `on_drop` when absent.  Network frontends answer
  /// Status::Expired here.  Optional.
  std::function<void()> on_expire;

  /// Fires (on the controller thread) when the class watchdog force-drops
  /// a request whose body is stuck or faulted past watchdog_ns.  The body
  /// may still be running: the callback must only touch state it owns
  /// exclusively (network frontends reply through a fresh response shell).
  /// Falls back to `on_drop` when absent.  Optional.
  std::function<void()> on_timeout;

  /// Relative latency budget in nanoseconds; the request's absolute EDF
  /// deadline is arrival + budget.  0 uses the class's QoS deadline, which
  /// preserves FIFO order among budget-less requests of one class.
  std::int64_t deadline_ns = 0;
};

/// Admission verdict returned by Server::submit.
enum class Admission : std::uint8_t {
  Admitted,  ///< queued for full-quality service
  Degraded,  ///< queued, but will be served through the approximate body
  Shed,      ///< rejected: a quota was exceeded (or the server closed)
};

[[nodiscard]] constexpr const char* to_string(Admission a) noexcept {
  switch (a) {
    case Admission::Admitted: return "admitted";
    case Admission::Degraded: return "degraded";
    case Admission::Shed: return "shed";
  }
  return "?";
}

/// Internal queue node: one submitted request in flight between admission
/// and completion.  Owned by whoever holds the raw pointer; linked through
/// `next` while inside the MPSC staging queue or the server's free pool.
struct Request {
  Job job;
  ClassId cls = 0;
  TenantId tenant = kDefaultTenant;
  std::int64_t arrival_ns = 0;
  std::int64_t deadline_ns = 0;  ///< absolute: arrival + budget (EDF key)
  std::int64_t issue_ns = 0;     ///< dispatch time (watchdog epoch base)
  bool degraded = false;
  Request* next = nullptr;

  // --- ownership protocol -------------------------------------------------
  // Admission holds one reference; at dispatch it is adopted by the spawned
  // task's callables (Server::dispatch's BodyRef, one count per stored
  // copy), so it drops at slab retirement even when an injected fault
  // unwinds the task before the serve wrapper ever runs.  A
  // watchdog-covered request gains a second, independently-dropped owner:
  // the class watchdog registry.  Whichever side wins `resolved` performs
  // the accounting; the node returns to the pool only when `owners`
  // reaches zero, so the controller sweep can never free a request whose
  // body is still running.
  std::atomic<bool> resolved{false};
  std::atomic<int> owners{0};
  Request* wd_next = nullptr;  ///< class watchdog registry (wd_lock)
  Request* wd_prev = nullptr;  ///< class watchdog registry (wd_lock)
};

/// Free pool of Request nodes: acquire on submit, release on completion.
/// A spinlocked Treiber chain — both sections are a few instructions, and
/// at serving rates (tens of thousands of requests/s) the lock is
/// uncontended.  Pooling removes the per-request new/delete pair from the
/// admission/dispatch hot path; a released node keeps its Job storage
/// cleared (captures must not outlive the request) but the node itself is
/// reused, so steady-state traffic allocates nothing here.
class RequestPool {
 public:
  RequestPool() = default;
  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  // Teardown is exclusive (shutdown contract: outstanding() == 0 and no
  // concurrent acquire/release), so the freelist walk takes no lock.
  ~RequestPool() SIGRT_NO_THREAD_SAFETY_ANALYSIS {
    Request* r = free_;
    while (r != nullptr) {
      Request* next = r->next;
      delete r;
      r = next;
    }
  }

  [[nodiscard]] SIGRT_HOT_PATH Request* acquire() {
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    {
      support::SpinLockGuard lock(lock_);
      if (Request* r = free_) {
        free_ = r->next;
        r->next = nullptr;
        return r;
      }
    }
    // Pool-miss growth path: the steady state never reaches it.
    return new Request;  // NOLINT(sigrt-hotpath-alloc)
  }

  SIGRT_HOT_PATH void release(Request* r) noexcept {
    r->job = Job{};  // run captured destructors now, not at pool teardown
    {
      support::SpinLockGuard lock(lock_);
      r->next = free_;
      free_ = r;
    }
    // Release-ordered and strictly after the node is back on the chain: a
    // shutdown thread that observes zero outstanding (acquire) therefore
    // sees every node linked and every release fully done — the destructor
    // walk can never race a straggler.
    outstanding_.fetch_sub(1, std::memory_order_release);
  }

  /// Nodes acquired and not yet released.  The serve tier's in_flight
  /// counters hit zero at complete(); the final ownership drop happens
  /// later, at task-slab retirement on a worker thread (see BodyRef in
  /// Server::dispatch), so shutdown must wait on THIS count before the
  /// pool can be torn down.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_acquire);
  }

 private:
  support::SpinLock lock_;
  Request* free_ SIGRT_GUARDED_BY(lock_) = nullptr;
  std::atomic<std::size_t> outstanding_{0};
};

/// Per-class counters and latency digest, safe to snapshot from any thread.
struct ClassReport {
  std::string name;
  Criticality criticality = Criticality::Degradable;
  double deadline_ms = 0.0;
  double ratio = 1.0;        ///< current group ratio() knob
  double perforation = 0.0;  ///< current dispatcher perforation level

  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t perforated = 0;
  /// Admitted requests shed at EDF pop time because their deadline had
  /// already passed (never spawned; on_expire fired).
  std::uint64_t expired = 0;
  /// Requests force-dropped by the class watchdog (stuck/faulted bodies);
  /// also counted into served_dropped so conservation holds.
  std::uint64_t timed_out = 0;
  std::uint64_t served_accurate = 0;
  std::uint64_t served_approximate = 0;
  std::uint64_t served_dropped = 0;  ///< degraded with no approximate body
  std::size_t in_flight = 0;

  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;

  [[nodiscard]] std::uint64_t served() const noexcept {
    return served_accurate + served_approximate + served_dropped;
  }

  /// Fraction of served requests that got the full-quality body.
  [[nodiscard]] double achieved_ratio() const noexcept {
    const std::uint64_t total = served();
    return total == 0
               ? 1.0
               : static_cast<double>(served_accurate) / static_cast<double>(total);
  }
};

/// One (tenant, class) accounting cell.
struct TenantClassCell {
  ClassId cls = 0;
  std::string class_name;
  std::uint64_t submitted = 0;  ///< admitted (including degraded)
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t perforated = 0;
  std::uint64_t expired = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t served_accurate = 0;
  std::uint64_t served_approximate = 0;
  std::uint64_t served_dropped = 0;
  std::size_t in_flight = 0;

  [[nodiscard]] std::uint64_t served() const noexcept {
    return served_accurate + served_approximate + served_dropped;
  }
};

/// Per-tenant counters: the total plus one cell per registered class.
struct TenantReport {
  TenantId id = kDefaultTenant;
  std::string name;
  std::size_t in_flight = 0;
  std::size_t max_in_flight = 0;
  std::size_t fair_in_flight = 0;
  std::vector<TenantClassCell> cells;

  [[nodiscard]] std::uint64_t submitted() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : cells) n += c.submitted;
    return n;
  }
  [[nodiscard]] std::uint64_t shed() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : cells) n += c.shed;
    return n;
  }
};

struct ServerStats {
  std::vector<ClassReport> classes;
  std::vector<TenantReport> tenants;

  [[nodiscard]] std::uint64_t total_submitted() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : classes) n += c.submitted;
    return n;
  }
  [[nodiscard]] std::uint64_t total_shed() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : classes) n += c.shed;
    return n;
  }
  [[nodiscard]] std::uint64_t total_served() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : classes) n += c.served();
    return n;
  }
};

}  // namespace sigrt::serve
