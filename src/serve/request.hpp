// Request vocabulary of the serving layer.
//
// A RequestClass binds a request type (a sobel job, a dct job, ...) to one
// runtime task group, a latency deadline and a quality floor; the Server
// keeps one QosController per class closing the loop between observed load
// and the group's ratio() knob.  Requests are significance-carrying jobs:
// the accurate body is the full-quality response, the optional approximate
// body the degraded one (absent => a "drop"-style class that answers with
// an empty/partial result when degraded, like DCT truncating bands).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/qos_controller.hpp"

namespace sigrt::serve {

using ClassId = std::uint32_t;

/// Static configuration of one request class.
struct RequestClassConfig {
  std::string name;

  /// Deadline, AIMD gains and backlog watermarks of the class controller.
  QosOptions qos;

  /// Admission bound: submissions while `max_in_flight` requests of this
  /// class are admitted-but-uncompleted are shed (rung 3 of the ladder).
  std::size_t max_in_flight = 1024;

  /// Degrade watermark: submissions above this in-flight depth are admitted
  /// but served through the approximate body regardless of classification.
  /// 0 disables the watermark.
  std::size_t degrade_in_flight = 0;
};

/// One unit of client work.  Exactly one of the two bodies runs per request.
struct Job {
  std::function<void()> accurate;     ///< required: full-quality response
  std::function<void()> approximate;  ///< optional: degraded response

  /// Paper semantics apply at request granularity: 1.0 pins the request
  /// accurate, <= 0.0 pins it approximate.  The default sits mid-scale so
  /// requests are degradable out of the box.
  double significance = 0.5;
};

/// Admission verdict returned by Server::submit.
enum class Admission : std::uint8_t {
  Admitted,  ///< queued for full-quality service
  Degraded,  ///< queued, but will be served through the approximate body
  Shed,      ///< rejected: class at max_in_flight (or server closed)
};

[[nodiscard]] constexpr const char* to_string(Admission a) noexcept {
  switch (a) {
    case Admission::Admitted: return "admitted";
    case Admission::Degraded: return "degraded";
    case Admission::Shed: return "shed";
  }
  return "?";
}

/// Internal queue node: one submitted request in flight between admission
/// and completion.  Owned by whoever holds the raw pointer; linked through
/// `next` while inside the MPSC admission queue.
struct Request {
  Job job;
  ClassId cls = 0;
  std::int64_t arrival_ns = 0;
  bool degraded = false;
  Request* next = nullptr;
};

/// Per-class counters and latency digest, safe to snapshot from any thread.
struct ClassReport {
  std::string name;
  double deadline_ms = 0.0;
  double ratio = 1.0;        ///< current group ratio() knob
  double perforation = 0.0;  ///< current dispatcher perforation level

  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t perforated = 0;
  std::uint64_t served_accurate = 0;
  std::uint64_t served_approximate = 0;
  std::uint64_t served_dropped = 0;  ///< degraded with no approximate body
  std::size_t in_flight = 0;

  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;

  [[nodiscard]] std::uint64_t served() const noexcept {
    return served_accurate + served_approximate + served_dropped;
  }

  /// Fraction of served requests that got the full-quality body.
  [[nodiscard]] double achieved_ratio() const noexcept {
    const std::uint64_t total = served();
    return total == 0
               ? 1.0
               : static_cast<double>(served_accurate) / static_cast<double>(total);
  }
};

struct ServerStats {
  std::vector<ClassReport> classes;

  [[nodiscard]] std::uint64_t total_submitted() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : classes) n += c.submitted;
    return n;
  }
  [[nodiscard]] std::uint64_t total_shed() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : classes) n += c.shed;
    return n;
  }
  [[nodiscard]] std::uint64_t total_served() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : classes) n += c.served();
    return n;
  }
};

}  // namespace sigrt::serve
