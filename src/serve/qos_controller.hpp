// Closed-loop load/quality controller for one request class.
//
// Generalizes the OnlineRatioController (core/autotuner.hpp) from "track a
// quality bound between kernel invocations" to "track a latency deadline
// under open-loop load": each epoch the server feeds the controller the
// class's windowed p99 latency and in-flight depth, and the controller
// answers with the group ratio() to apply and a perforation level for the
// dispatcher.  AIMD with a degradation ladder:
//
//   violation  (p99 > deadline, or backlog above the high watermark):
//       ratio <- max(floor, ratio * decrease_factor)        (rung 1)
//       once the ratio sits at the quality floor:
//       perforation <- min(max_perforation, perforation + perforate_step)
//                                                           (rung 2)
//   compliant  (backlog at/below the low watermark and p99 under
//               target_fraction * deadline):
//       un-perforate first, then ratio <- min(1, ratio + increase_step)
//   otherwise: hold (the hysteresis band between target and deadline).
//
// Rung 3 — shedding — is not the controller's job: it happens at admission
// when a class's in-flight bound is exceeded (see Server::submit).
//
// The class is pure logic (no clock, no threads): update() is called from
// the server's controller thread, and the convergence tests drive it with
// synthetic observations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace sigrt::serve {

struct QosOptions {
  double deadline_ns = 50e6;     ///< the class latency objective (p99)
  double quality_floor = 0.0;    ///< ratio() is never driven below this
  double initial_ratio = 1.0;

  double increase_step = 0.05;   ///< additive recovery toward ratio 1.0
  double decrease_factor = 0.7;  ///< multiplicative backoff on violation
  double target_fraction = 0.5;  ///< recover only when p99 < fraction * deadline

  /// Windows with fewer completions cannot signal a latency violation (one
  /// slow straggler at low rate must not collapse the ratio).
  std::uint64_t min_samples = 8;

  std::size_t backlog_high = 256;  ///< in-flight above this is a violation
  std::size_t backlog_low = 32;    ///< recovery requires in-flight <= this

  double perforate_step = 0.15;
  double max_perforation = 0.9;
};

/// One epoch's worth of telemetry for a class.
struct QosObservation {
  double p99_ns = 0.0;           ///< windowed p99 latency (0 when no samples)
  std::uint64_t completed = 0;   ///< completions inside the window
  std::size_t in_flight = 0;     ///< admitted-but-uncompleted at sample time
};

struct QosDecision {
  double ratio = 1.0;
  double perforation = 0.0;  ///< fraction of admitted requests to drop outright
};

class QosController {
 public:
  explicit QosController(QosOptions options) noexcept
      : options_(options),
        ratio_(std::clamp(options.initial_ratio, options.quality_floor, 1.0)) {}

  QosDecision update(const QosObservation& obs) noexcept {
    const bool latency_bad = obs.completed >= options_.min_samples &&
                             obs.p99_ns > options_.deadline_ns;
    const bool backlog_bad = obs.in_flight > options_.backlog_high;
    const bool calm =
        obs.in_flight <= options_.backlog_low &&
        (obs.completed == 0 ||
         obs.p99_ns <= options_.target_fraction * options_.deadline_ns);

    if (latency_bad || backlog_bad) {
      ++violations_;
      if (ratio_ > options_.quality_floor) {
        ratio_ *= options_.decrease_factor;
        // Snap once within one additive step of the floor: a pure
        // multiplicative decrease only asymptotes and would keep rung 2
        // unreachable.
        if (ratio_ < options_.quality_floor + options_.increase_step) {
          ratio_ = options_.quality_floor;
        }
      } else {
        perforation_ = std::min(options_.max_perforation,
                                perforation_ + options_.perforate_step);
      }
    } else if (calm) {
      // Climb the ladder back down in reverse order.
      if (perforation_ > 0.0) {
        perforation_ = std::max(0.0, perforation_ - options_.perforate_step);
      } else {
        ratio_ = std::min(1.0, ratio_ + options_.increase_step);
      }
    }
    return {ratio_, perforation_};
  }

  [[nodiscard]] double ratio() const noexcept { return ratio_; }
  [[nodiscard]] double perforation() const noexcept { return perforation_; }
  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }
  [[nodiscard]] const QosOptions& options() const noexcept { return options_; }

 private:
  QosOptions options_;
  double ratio_;
  double perforation_ = 0.0;
  std::uint64_t violations_ = 0;
};

}  // namespace sigrt::serve
