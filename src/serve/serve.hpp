// Umbrella header: the serving layer above the runtime facade.
//
//   #include "serve/serve.hpp"
//
// brings in the request-class vocabulary, the admission queue, the QoS
// controller and the Server itself.  See docs/serving.md for the request
// lifecycle and the controller equations.
#pragma once

#include "serve/admission.hpp"      // IWYU pragma: export
#include "serve/qos_controller.hpp" // IWYU pragma: export
#include "serve/request.hpp"        // IWYU pragma: export
#include "serve/server.hpp"         // IWYU pragma: export
#include "support/histogram.hpp"    // IWYU pragma: export
