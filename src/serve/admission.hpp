// Hand-off structures between submitting client threads and the server's
// dispatcher tier.
//
// Two stages:
//
//   * RequestQueue — lock-free MPSC staging queue (the scheduler-inbox
//     idiom): submitters take one CAS per push; a dispatcher consumes the
//     whole chain with one exchange.  The *bound* is not here — admission
//     control counts in-flight requests (queued + executing) per class and
//     per tenant, not queue depth, so back-pressure survives the hand-off
//     into the scheduler; see Server::submit.
//   * EdfQueue — per-class earliest-deadline-first heap the dispatchers
//     drain the staging chain into.  Within a class, requests issue to the
//     runtime in deadline order (not arrival order), throttled by the
//     class's dispatch window, so under backlog the p99 the QosController
//     regulates reflects urgency.  Spinlocked: push/pop are a few dozen
//     instructions, and with N dispatchers the lock also serializes the
//     heap's issue order.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "serve/request.hpp"
#include "support/spinlock.hpp"

namespace sigrt::serve {

class RequestQueue {
 public:
  RequestQueue() = default;
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Any thread.  One CAS; the release pairs with pop_all_fifo's acquire so
  /// the consumer sees the fully built Request.
  SIGRT_HOT_PATH void push(Request* r) noexcept {
    Request* head = head_.load(std::memory_order_relaxed);
    do {
      r->next = head;
    } while (!head_.compare_exchange_weak(head, r, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Consumer only.  Takes the whole chain and reverses it so requests come
  /// back in submission order.  Returns nullptr when empty.
  [[nodiscard]] SIGRT_HOT_PATH Request* pop_all_fifo() noexcept {
    Request* chain = head_.exchange(nullptr, std::memory_order_acquire);
    Request* fifo = nullptr;
    while (chain != nullptr) {
      Request* next = chain->next;
      chain->next = fifo;
      fifo = chain;
      chain = next;
    }
    return fifo;
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<Request*> head_{nullptr};
};

/// Min-heap on Request::deadline_ns.  The backing vector grows to the
/// high-water mark once and is then reused — steady-state traffic touches
/// no allocator here.  size() is readable lock-free (a relaxed mirror of
/// the heap size) so dispatch-eligibility scans and completion-side wake
/// checks never take the lock.
class EdfQueue {
 public:
  EdfQueue() = default;
  EdfQueue(const EdfQueue&) = delete;
  EdfQueue& operator=(const EdfQueue&) = delete;

  SIGRT_HOT_PATH void push(Request* r) {
    support::SpinLockGuard lock(lock_);
    heap_.push_back(r);
    sift_up(heap_.size() - 1);
    size_.store(heap_.size(), std::memory_order_relaxed);
  }

  /// Pops the earliest deadline, or nullptr when empty.
  [[nodiscard]] SIGRT_HOT_PATH Request* try_pop() {
    support::SpinLockGuard lock(lock_);
    if (heap_.empty()) return nullptr;
    Request* top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    size_.store(heap_.size(), std::memory_order_relaxed);
    return top;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  void sift_up(std::size_t i) noexcept SIGRT_REQUIRES(lock_) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent]->deadline_ns <= heap_[i]->deadline_ns) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) noexcept SIGRT_REQUIRES(lock_) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && heap_[l]->deadline_ns < heap_[smallest]->deadline_ns) {
        smallest = l;
      }
      if (r < n && heap_[r]->deadline_ns < heap_[smallest]->deadline_ns) {
        smallest = r;
      }
      if (smallest == i) return;
      std::swap(heap_[smallest], heap_[i]);
      i = smallest;
    }
  }

  support::SpinLock lock_;
  std::vector<Request*> heap_ SIGRT_GUARDED_BY(lock_);
  /// Relaxed lock-free mirror of heap_.size() — the documented escape
  /// hatch for dispatch-eligibility scans that must not take lock_.
  std::atomic<std::size_t> size_{0};
};

}  // namespace sigrt::serve
