// Lock-free MPSC request queue: the hand-off between submitting client
// threads and the server's single dispatcher thread.
//
// Same idiom as the scheduler's per-worker inboxes (see architecture.md): a
// Treiber chain linked through Request::next, one CAS per push, consumed
// wholesale with one exchange and reversed to FIFO order.  The *bound* is
// not here — admission control is per class and counts in-flight requests
// (queued + executing), not queue depth, so back-pressure survives the
// hand-off into the scheduler; see Server::submit.
#pragma once

#include <atomic>

#include "serve/request.hpp"

namespace sigrt::serve {

class RequestQueue {
 public:
  RequestQueue() = default;
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Any thread.  One CAS; the release pairs with pop_all_fifo's acquire so
  /// the consumer sees the fully built Request.
  void push(Request* r) noexcept {
    Request* head = head_.load(std::memory_order_relaxed);
    do {
      r->next = head;
    } while (!head_.compare_exchange_weak(head, r, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Consumer only.  Takes the whole chain and reverses it so requests come
  /// back in submission order.  Returns nullptr when empty.
  [[nodiscard]] Request* pop_all_fifo() noexcept {
    Request* chain = head_.exchange(nullptr, std::memory_order_acquire);
    Request* fifo = nullptr;
    while (chain != nullptr) {
      Request* next = chain->next;
      chain->next = fifo;
      fifo = chain;
      chain = next;
    }
    return fifo;
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<Request*> head_{nullptr};
};

}  // namespace sigrt::serve
