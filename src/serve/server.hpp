// Significance-aware serving layer: maps incoming requests onto runtime
// task groups and closes the loop between load and quality.
//
//   sigrt::serve::Server srv({.runtime = {.workers = 8}});
//   sigrt::serve::RequestClassConfig cfg;
//   cfg.name = "sobel";
//   cfg.qos.deadline_ns = 25e6;      // p99 objective: 25 ms
//   cfg.qos.quality_floor = 0.2;     // never serve < 20% accurate
//   const auto cls = srv.register_class(cfg);
//   ...
//   srv.submit(cls, {.accurate = [=] { full_filter(req); },
//                    .approximate = [=] { cheap_filter(req); },
//                    .significance = 0.6});
//
// Three moving parts above the Runtime facade:
//   * admission (client threads): per-class in-flight bound with a
//     shed-or-degrade policy, then one CAS into the MPSC request queue;
//   * dispatchers (N threads, ServerOptions::dispatcher_threads): drain the
//     queue in batches, apply the controller's perforation level, and spawn
//     each request as one significance-carrying task into the class's
//     group.  Spawning is safe from any thread (the runtime's any-thread
//     contract), so the dispatcher tier shards horizontally: each pop takes
//     the whole pending chain, batches stay FIFO internally, and with N > 1
//     batches from different dispatchers may interleave (per-request
//     latency accounting is unaffected);
//   * QoS controller (one thread): every epoch, diffs each class's sharded
//     latency histogram into a window, computes p99 + in-flight depth, and
//     retargets the group's ratio() through Runtime::set_ratio — the
//     any-thread relaxed-atomic contract documented in architecture.md.
//
// Threading contract: register_class/submit/stats/class_report are safe
// from any thread; submit must not race close()/destruction (quiesce your
// producers first — late racers are shed, never leaked).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "serve/admission.hpp"
#include "serve/qos_controller.hpp"
#include "serve/request.hpp"
#include "support/histogram.hpp"

namespace sigrt::serve {

struct ServerOptions {
  /// Configuration for the owned Runtime.  Serving forces dequeue-time
  /// classification (buffering policies would strand low-rate requests
  /// until a barrier that never comes), disables the per-task log (it grows
  /// without bound under open-ended traffic) and runs reliable workers only
  /// (every admitted request must complete exactly one body).
  RuntimeConfig runtime;

  /// Shards per class latency histogram (see support::ShardedHistogram).
  /// 0 = auto: one per recording thread (the workers, plus the dispatcher
  /// which records perforation-free completions in inline mode), so
  /// recording threads rarely contend on a shard.
  unsigned histogram_shards = 0;

  /// QoS controller sampling period.  0 disables the controller thread:
  /// ratios stay wherever register_class/set_ratio put them (used by the
  /// deterministic admission tests and by callers driving ratios manually).
  double epoch_ms = 10.0;

  /// Dispatcher (spawner) threads draining the admission queue; clamped to
  /// >= 1, and to exactly 1 when the runtime is inline (workers == 0,
  /// whose synchronous queue admits a single client thread).  One
  /// dispatcher preserves global FIFO dispatch order; more remove the
  /// single-spawner bottleneck under high submit rates at the cost of
  /// batch interleaving between dispatchers.
  unsigned dispatcher_threads = 1;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// close()s, which drains every admitted request before joining.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a request class and creates its task group ("serve/<name>")
  /// at the controller's initial ratio.  Any thread; throws
  /// std::length_error beyond kMaxClasses.
  ClassId register_class(RequestClassConfig config);

  /// Admission control + enqueue.  Any thread.  Shed requests never touch
  /// the runtime; Degraded ones are served through the approximate body.
  Admission submit(ClassId cls, Job job);

  /// Stops intake, serves everything already admitted, then joins the
  /// dispatcher and controller threads.  Idempotent.
  void close();

  [[nodiscard]] ClassReport class_report(ClassId cls) const;
  [[nodiscard]] ServerStats stats() const;

  /// Zeroes every class's latency histogram — windowing tool for tests and
  /// benchmarks that want steady-state percentiles after a warmup phase.
  /// Counters (submitted/shed/...) are left intact.
  void reset_latency_stats();

  [[nodiscard]] Runtime& runtime() noexcept { return *runtime_; }

  static constexpr std::size_t kMaxClasses = 64;

 private:
  struct ClassState {
    ClassState(RequestClassConfig cfg_in, unsigned shards)
        : cfg(std::move(cfg_in)), qos(cfg.qos), latency(shards) {}

    RequestClassConfig cfg;
    GroupId group = kDefaultGroup;

    // Controller-thread-only state.
    QosController qos;
    support::Histogram window_prev;

    support::ShardedHistogram latency;
    std::atomic<double> perforation{0.0};

    std::atomic<std::size_t> in_flight{0};
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> perforated{0};
    std::atomic<std::uint64_t> served_accurate{0};
    std::atomic<std::uint64_t> served_approximate{0};
    std::atomic<std::uint64_t> served_dropped{0};
  };

  enum class Outcome : std::uint8_t { Accurate, Approximate, Dropped };

  [[nodiscard]] ClassState& class_ref(ClassId cls) const;

  void dispatcher_loop();
  /// `rotor` is the calling dispatcher's per-class perforation accumulator
  /// (kMaxClasses entries) — dispatcher-local, so N dispatchers never race
  /// on it; each enforces the drop fraction over its own batch stream.
  void dispatch(Request* r, double* rotor);
  void complete(Request* r, Outcome outcome);
  void wake_dispatcher() noexcept;

  void controller_loop();
  void controller_tick();

  ServerOptions options_;
  std::unique_ptr<Runtime> runtime_;

  std::array<std::atomic<ClassState*>, kMaxClasses> classes_{};
  std::atomic<std::uint32_t> class_count_{0};
  mutable std::mutex register_mutex_;
  std::vector<std::unique_ptr<ClassState>> owned_classes_;  ///< register_mutex_

  RequestQueue queue_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{true};

  /// Count of dispatchers currently announcing idle (two-phase park); a
  /// producer only pays the notify when this is nonzero.
  std::atomic<unsigned> idle_dispatchers_{0};
  /// Single-flight token for the producer-side wake: one producer per
  /// burst takes the lock+notify, the rest skip (see wake_dispatcher).
  std::atomic<bool> wake_pending_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  std::mutex controller_mutex_;
  std::condition_variable controller_cv_;
  bool controller_stop_ = false;  ///< controller_mutex_

  std::mutex close_mutex_;
  bool closed_ = false;  ///< close_mutex_

  std::vector<std::thread> dispatchers_;
  std::thread controller_;
};

}  // namespace sigrt::serve
