// Significance-aware serving layer: maps incoming requests onto runtime
// task groups and closes the loop between load and quality.
//
//   sigrt::serve::Server srv({.runtime = {.workers = 8}});
//   sigrt::serve::RequestClassConfig cfg;
//   cfg.name = "sobel";
//   cfg.qos.deadline_ns = 25e6;      // p99 objective: 25 ms
//   cfg.qos.quality_floor = 0.2;     // never serve < 20% accurate
//   const auto cls = srv.register_class(cfg);
//   const auto t = srv.register_tenant({.name = "acme", .max_in_flight = 64});
//   ...
//   srv.submit(cls, t, {.accurate = [=] { full_filter(req); },
//                       .approximate = [=] { cheap_filter(req); },
//                       .significance = 0.6});
//
// Three moving parts above the Runtime facade:
//   * admission (client threads): per-tenant x per-class in-flight
//     accounting with a shed-or-degrade policy — a tenant over its fairness
//     watermark sheds its own BestEffort and degrades its own Degradable
//     traffic before any other tenant's Critical class feels load — then
//     one CAS into the MPSC staging queue;
//   * dispatchers (N threads, ServerOptions::dispatcher_threads): drain the
//     staging queue into per-class EDF heaps and issue, earliest deadline
//     first, up to each class's dispatch window of in-runtime requests;
//     issued requests pass the controller's perforation rotor and are
//     spawned as one significance-carrying task each into the class's
//     group.  Spawning is safe from any thread (the runtime's any-thread
//     contract), so the dispatcher tier shards horizontally; the per-class
//     heap lock keeps EDF order global across dispatchers;
//   * QoS controller (one thread): every epoch, diffs each class's sharded
//     latency histogram into a window, computes p99 + in-flight depth, and
//     retargets the group's ratio() through Runtime::set_ratio — the
//     any-thread relaxed-atomic contract documented in architecture.md.
//
// Threading contract: register_class/register_tenant/submit/stats/
// class_report are safe from any thread; submit must not race
// close()/destruction (quiesce your producers first — late racers are
// shed, never leaked; their on_drop still fires).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "serve/admission.hpp"
#include "serve/qos_controller.hpp"
#include "serve/request.hpp"
#include "support/histogram.hpp"
#include "support/mutex.hpp"
#include "support/spinlock.hpp"

namespace sigrt::serve {

struct ServerOptions {
  /// Configuration for the owned Runtime.  Serving forces dequeue-time
  /// classification (buffering policies would strand low-rate requests
  /// until a barrier that never comes), disables the per-task log (it grows
  /// without bound under open-ended traffic) and runs reliable workers only
  /// (every admitted request must complete exactly one body).
  RuntimeConfig runtime;

  /// Shards per class latency histogram (see support::ShardedHistogram).
  /// 0 = auto: one per recording thread (the workers, plus the dispatcher
  /// which records perforation-free completions in inline mode), so
  /// recording threads rarely contend on a shard.
  unsigned histogram_shards = 0;

  /// QoS controller sampling period.  0 disables the controller thread:
  /// ratios stay wherever register_class/set_ratio put them (used by the
  /// deterministic admission tests and by callers driving ratios manually).
  double epoch_ms = 10.0;

  /// Dispatcher (spawner) threads draining the admission queue; clamped to
  /// exactly 1 when the runtime is inline (workers == 0, whose synchronous
  /// queue admits a single client thread).  0 = auto: one dispatcher per
  /// last-level-cache group, bounded by workers/2 (see
  /// topo::Topology::recommended_dispatchers) — single-socket desktops get
  /// 1, multi-CCX/multi-socket boxes shard the spawn tier.  One dispatcher
  /// preserves global EDF issue order trivially; more remove the
  /// single-spawner bottleneck under high submit rates (the per-class heap
  /// lock still serializes each class's issue order).
  unsigned dispatcher_threads = 0;

  /// Per-class dispatch window: at most this many of a class's requests
  /// sit inside the runtime (spawned, not yet completed) at once; the rest
  /// wait in the class's EDF heap where a later, more urgent arrival can
  /// still overtake them.  0 = auto (max(4, 2 x workers)).  Small windows
  /// sharpen EDF at a small pipelining cost; large ones converge to FIFO.
  std::size_t edf_window = 0;

  /// Called at the start of every thread the server owns (role is
  /// "dispatcher" or "controller"; network frontends reuse it for their
  /// pollers).  Benchmarks use it to tag serve-tier threads for
  /// allocation instrumentation.  Optional.
  std::function<void(const char* role, unsigned index)> thread_start_hook;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// close()s, which drains every admitted request before joining.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a request class and creates its task group ("serve/<name>")
  /// at the controller's initial ratio.  Any thread; throws
  /// std::length_error beyond kMaxClasses.
  ClassId register_class(RequestClassConfig config);

  /// Registers a tenant.  Any thread; throws std::length_error beyond
  /// kMaxTenants.  Tenant 0 ("default", unbounded) always exists.
  TenantId register_tenant(TenantConfig config);

  /// Admission control + enqueue for the default tenant.  Any thread.
  /// Shed requests never touch the runtime; Degraded ones are served
  /// through the approximate body.
  Admission submit(ClassId cls, Job job) {
    return submit(cls, kDefaultTenant, std::move(job));
  }

  /// Tenant-aware admission: the request must clear the tenant's quota and
  /// fairness watermark AND the class's bounds, in that order.
  Admission submit(ClassId cls, TenantId tenant, Job job);

  /// Graceful shutdown, phase-ordered: quiesce admission (new submissions
  /// shed), serve every admitted request to completion (dispatchers keep
  /// issuing the EDF backlog, EDF-order; nothing admitted is shed), then
  /// stop the dispatcher and controller threads.  Idempotent; close()
  /// calls it first.  Requests stuck past their class watchdog still
  /// resolve (as drops) while the controller runs.
  void drain();

  /// drain(), then sheds any submission that raced the intake flip.
  /// Idempotent.
  void close();

  /// The class's watchdog budget (0 = disabled) — frontends use it to
  /// decide whether a request needs timeout-response plumbing.  Any thread.
  [[nodiscard]] std::int64_t class_watchdog_ns(ClassId cls) const {
    return class_ref(cls).cfg.watchdog_ns;
  }

  [[nodiscard]] ClassReport class_report(ClassId cls) const;
  [[nodiscard]] TenantReport tenant_report(TenantId tenant) const;
  [[nodiscard]] ServerStats stats() const;

  /// Cheap validity bounds (one acquire load each) so frontends can reject
  /// unknown ids without exception control flow on the request path.
  [[nodiscard]] std::size_t class_count() const noexcept {
    return class_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return tenant_count_.load(std::memory_order_acquire);
  }

  /// Zeroes every class's latency histogram — windowing tool for tests and
  /// benchmarks that want steady-state percentiles after a warmup phase.
  /// Counters (submitted/shed/...) are left intact.
  void reset_latency_stats();

  [[nodiscard]] Runtime& runtime() noexcept { return *runtime_; }

  static constexpr std::size_t kMaxClasses = 64;
  static constexpr std::size_t kMaxTenants = 32;

 private:
  /// One (tenant, class) accounting cell: every counter a TenantClassCell
  /// reports, maintained at admission/completion time.
  struct Cell {
    std::atomic<std::size_t> in_flight{0};
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> perforated{0};
    std::atomic<std::uint64_t> served_accurate{0};
    std::atomic<std::uint64_t> served_approximate{0};
    std::atomic<std::uint64_t> served_dropped{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> timed_out{0};
  };

  struct TenantState {
    explicit TenantState(TenantConfig cfg_in) : cfg(std::move(cfg_in)) {}

    TenantConfig cfg;
    std::atomic<std::size_t> in_flight{0};  ///< across all classes
    std::array<Cell, kMaxClasses> cells{};
  };

  struct ClassState {
    ClassState(RequestClassConfig cfg_in, unsigned shards)
        : cfg(std::move(cfg_in)), qos(cfg.qos), latency(shards) {}

    RequestClassConfig cfg;
    GroupId group = kDefaultGroup;

    // Controller-thread-only state.
    QosController qos;
    support::Histogram window_prev;

    support::ShardedHistogram latency;
    std::atomic<double> perforation{0.0};

    /// EDF stage: admitted requests waiting to be issued, and the count of
    /// issued-but-uncompleted requests the dispatch window throttles.
    EdfQueue edf;
    std::atomic<std::size_t> in_runtime{0};

    std::atomic<std::size_t> in_flight{0};
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> perforated{0};
    std::atomic<std::uint64_t> served_accurate{0};
    std::atomic<std::uint64_t> served_approximate{0};
    std::atomic<std::uint64_t> served_dropped{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> timed_out{0};

    /// Watchdog registry: intrusive doubly-linked list of issued requests
    /// (linked at dispatch, unlinked at complete) the controller sweeps for
    /// overdue entries.  Only populated when cfg.watchdog_ns > 0.
    support::SpinLock wd_lock;
    Request* wd_head SIGRT_GUARDED_BY(wd_lock) = nullptr;
  };

  enum class Outcome : std::uint8_t { Accurate, Approximate, Dropped };

  [[nodiscard]] ClassState& class_ref(ClassId cls) const;
  [[nodiscard]] TenantState& tenant_ref(TenantId tenant) const;
  [[nodiscard]] std::size_t window_for() const noexcept;

  void dispatcher_loop(unsigned index);
  /// Moves the staging chain into the per-class EDF heaps; returns how many
  /// requests moved.
  std::size_t drain_staging();
  /// Issues EDF heads while dispatch windows allow (`bounded`), or drains
  /// the heaps completely (shutdown).  Returns how many requests issued.
  std::size_t issue_edf(double* rotor, bool bounded);
  /// `rotor` is the calling dispatcher's per-class perforation accumulator
  /// (kMaxClasses entries) — dispatcher-local, so N dispatchers never race
  /// on it; each enforces the drop fraction over its own batch stream.
  void dispatch(Request* r, double* rotor);
  void complete(Request* r, Outcome outcome);
  /// Drops an admitted request without running a body (perforation or
  /// shutdown): fires on_drop, bumps `shed`/`perforated` style counters via
  /// the caller, releases the in-flight reservations and recycles the node.
  void drop_admitted(Request* r);
  /// Deadline-expired at EDF pop: like drop_admitted but fires on_expire
  /// (falling back to on_drop) — the caller has already bumped `expired`.
  void expire_admitted(Request* r);
  void watchdog_link(ClassState& s, Request* r);
  /// Returns true when r was still linked (i.e. the sweep hadn't claimed
  /// it), so the caller knows how many ownership refs to drop.
  bool watchdog_unlink(ClassState& s, Request* r);
  /// Controller-tick pass: resolves every issued request overdue past its
  /// class watchdog as a drop (on_timeout, falling back to on_drop) and
  /// releases its in-flight reservations.  The stuck body may still be
  /// running; the owners protocol keeps the Request alive until it exits.
  void watchdog_sweep();
  void request_unref(Request* r, int n);
  void wake_dispatcher() noexcept;
  [[nodiscard]] bool has_issuable() const noexcept;

  void controller_loop();
  void controller_tick();

  ServerOptions options_;
  std::unique_ptr<Runtime> runtime_;

  std::array<std::atomic<ClassState*>, kMaxClasses> classes_{};
  std::atomic<std::uint32_t> class_count_{0};
  std::array<std::atomic<TenantState*>, kMaxTenants> tenants_{};
  std::atomic<std::uint32_t> tenant_count_{0};
  mutable support::Mutex register_mutex_;
  std::vector<std::unique_ptr<ClassState>> owned_classes_
      SIGRT_GUARDED_BY(register_mutex_);
  std::vector<std::unique_ptr<TenantState>> owned_tenants_
      SIGRT_GUARDED_BY(register_mutex_);

  RequestQueue queue_;
  RequestPool pool_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> running_{true};

  /// Count of dispatchers currently announcing idle (two-phase park); a
  /// producer only pays the notify when this is nonzero.
  std::atomic<unsigned> idle_dispatchers_{0};
  /// Single-flight token for the producer-side wake: one producer per
  /// burst takes the lock+notify, the rest skip (see wake_dispatcher).
  std::atomic<bool> wake_pending_{false};
  support::Mutex wake_mutex_;
  std::condition_variable wake_cv_;

  support::Mutex controller_mutex_;
  std::condition_variable controller_cv_;
  bool controller_stop_ SIGRT_GUARDED_BY(controller_mutex_) = false;

  support::Mutex close_mutex_;
  bool drained_ SIGRT_GUARDED_BY(close_mutex_) = false;
  bool closed_ SIGRT_GUARDED_BY(close_mutex_) = false;

  std::vector<std::thread> dispatchers_;
  std::thread controller_;
};

}  // namespace sigrt::serve
