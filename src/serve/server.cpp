#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/task_options.hpp"
#include "core/topology.hpp"
#include "support/timer.hpp"

namespace sigrt::serve {

namespace {

/// Serving constraints on the runtime configuration (see ServerOptions).
RuntimeConfig serving_config(RuntimeConfig c) {
  if (c.policy != PolicyKind::LQH && c.policy != PolicyKind::Agnostic) {
    // GTB-family policies buffer tasks until a window fills or a barrier
    // flushes; a server never reaches a barrier, so low-rate requests would
    // wait unboundedly.  LQH classifies at dequeue with zero buffering.
    c.policy = PolicyKind::LQH;
  }
  // The per-task log grows forever under open-ended traffic.
  c.record_task_log = false;
  // Every admitted request must complete exactly one body; NTC fault
  // injection silently drops approximate tasks without running them.
  c.unreliable_workers = 0;
  c.unreliable_fault_rate = 0.0;
  return c;
}

/// Dispatcher-tier width.  Inline mode (workers == 0) executes on the
/// enqueuing thread over an unsynchronized queue — single client thread
/// only — so a sharded dispatcher tier would race on it; sharding
/// requires real workers.
unsigned dispatcher_count(const ServerOptions& options) {
  if (options.runtime.workers == 0) return 1u;
  const unsigned requested =
      options.dispatcher_threads != 0
          ? options.dispatcher_threads
          : topo::system_topology().recommended_dispatchers(
                options.runtime.workers);
  return std::max(1u, requested);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      runtime_(std::make_unique<Runtime>(serving_config(options_.runtime))) {
  for (auto& slot : classes_) slot.store(nullptr, std::memory_order_relaxed);
  for (auto& slot : tenants_) slot.store(nullptr, std::memory_order_relaxed);
  // Tenant 0 pre-exists with unbounded quotas, so tenant-oblivious callers
  // (and every pre-tenant test) see exactly the per-class semantics.
  register_tenant(TenantConfig{.name = "default"});
  const unsigned dispatchers = dispatcher_count(options_);
  // Any failure past the first thread must stop and join what already
  // started — destroying a joinable std::thread terminates.
  try {
    dispatchers_.reserve(dispatchers);
    for (unsigned i = 0; i < dispatchers; ++i) {
      dispatchers_.emplace_back([this, i] { dispatcher_loop(i); });
    }
    if (options_.epoch_ms > 0.0) {
      controller_ = std::thread([this] { controller_loop(); });
    }
  } catch (...) {
    running_.store(false, std::memory_order_release);
    {
      support::MutexLock lock(wake_mutex_);
      wake_cv_.notify_all();
    }
    for (auto& d : dispatchers_) d.join();
    throw;
  }
}

Server::~Server() { close(); }

ClassId Server::register_class(RequestClassConfig config) {
  support::MutexLock lock(register_mutex_);
  const std::uint32_t id = class_count_.load(std::memory_order_relaxed);
  if (id >= kMaxClasses) {
    throw std::length_error("serve::Server: too many request classes");
  }
  const unsigned shards = options_.histogram_shards != 0
                              ? options_.histogram_shards
                              : runtime_->config().workers + 1;
  auto state = std::make_unique<ClassState>(std::move(config), shards);
  state->group = runtime_->create_group("serve/" + state->cfg.name,
                                        state->cfg.qos.initial_ratio);
  ClassState* ptr = state.get();
  owned_classes_.push_back(std::move(state));
  classes_[id].store(ptr, std::memory_order_release);
  class_count_.store(id + 1, std::memory_order_release);
  return id;
}

TenantId Server::register_tenant(TenantConfig config) {
  support::MutexLock lock(register_mutex_);
  const std::uint32_t id = tenant_count_.load(std::memory_order_relaxed);
  if (id >= kMaxTenants) {
    throw std::length_error("serve::Server: too many tenants");
  }
  auto state = std::make_unique<TenantState>(std::move(config));
  TenantState* ptr = state.get();
  owned_tenants_.push_back(std::move(state));
  tenants_[id].store(ptr, std::memory_order_release);
  tenant_count_.store(id + 1, std::memory_order_release);
  return id;
}

Server::ClassState& Server::class_ref(ClassId cls) const {
  if (cls >= class_count_.load(std::memory_order_acquire)) {
    throw std::out_of_range("serve::Server: unknown request class");
  }
  return *classes_[cls].load(std::memory_order_acquire);
}

Server::TenantState& Server::tenant_ref(TenantId tenant) const {
  if (tenant >= tenant_count_.load(std::memory_order_acquire)) {
    throw std::out_of_range("serve::Server: unknown tenant");
  }
  return *tenants_[tenant].load(std::memory_order_acquire);
}

std::size_t Server::window_for() const noexcept {
  if (options_.edf_window != 0) return options_.edf_window;
  return std::max<std::size_t>(4, 2 * runtime_->config().workers);
}

Admission Server::submit(ClassId cls, TenantId tenant, Job job) {
  ClassState& s = class_ref(cls);
  TenantState& t = tenant_ref(tenant);
  Cell& cell = t.cells[cls];
  if (!accepting_.load(std::memory_order_acquire)) {
    s.shed.fetch_add(1, std::memory_order_relaxed);
    cell.shed.fetch_add(1, std::memory_order_relaxed);
    return Admission::Shed;
  }

  // Tenant-first admission, so one tenant's overload consumes its own
  // budget before it can touch the shared class bound.  Both reservations
  // are optimistic (reserve-then-check, one RMW each) and unwound in
  // reverse on any shed so the ordering invariant "tenant slot held while
  // class slot held" is never violated.
  //
  // Rung order per submission:
  //   1. tenant hard quota        -> shed, whatever the class criticality
  //   2. tenant fairness share    -> BestEffort sheds, Degradable degrades,
  //                                  Critical passes untouched
  //   3. class max_in_flight      -> shed (the shared backstop)
  //   4. class degrade watermark  -> degrade
  const std::size_t t_depth =
      t.in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (t_depth > t.cfg.max_in_flight) {
    t.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    s.shed.fetch_add(1, std::memory_order_relaxed);
    cell.shed.fetch_add(1, std::memory_order_relaxed);
    return Admission::Shed;
  }
  bool degraded = false;
  if (t.cfg.fair_in_flight != 0 && t_depth > t.cfg.fair_in_flight) {
    switch (s.cfg.criticality) {
      case Criticality::BestEffort:
        t.in_flight.fetch_sub(1, std::memory_order_acq_rel);
        s.shed.fetch_add(1, std::memory_order_relaxed);
        cell.shed.fetch_add(1, std::memory_order_relaxed);
        return Admission::Shed;
      case Criticality::Degradable:
        degraded = true;
        break;
      case Criticality::Critical:
        break;
    }
  }

  // Class-level bound on *in-flight* requests (queued + executing), so the
  // back-pressure survives the hand-off into the scheduler.
  const std::size_t depth =
      s.in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > s.cfg.max_in_flight) {
    s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    t.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    s.shed.fetch_add(1, std::memory_order_relaxed);
    cell.shed.fetch_add(1, std::memory_order_relaxed);
    return Admission::Shed;
  }
  degraded |= s.cfg.degrade_in_flight != 0 && depth > s.cfg.degrade_in_flight;

  const std::int64_t now = support::now_ns();
  const std::int64_t budget =
      job.deadline_ns > 0 ? job.deadline_ns
                          : static_cast<std::int64_t>(s.cfg.qos.deadline_ns);

  Request* r = pool_.acquire();
  r->job = std::move(job);
  r->cls = cls;
  r->tenant = tenant;
  r->arrival_ns = now;
  r->deadline_ns = now + budget;
  r->degraded = degraded;
  r->issue_ns = 0;
  r->resolved.store(false, std::memory_order_relaxed);
  // The admission path holds the only reference until dispatch, where it
  // is adopted by the spawned task's callables (BodyRef); the watchdog
  // takes its own reference there (see the owners protocol in
  // request.hpp).
  r->owners.store(1, std::memory_order_relaxed);
  r->wd_next = nullptr;
  r->wd_prev = nullptr;

  cell.in_flight.fetch_add(1, std::memory_order_relaxed);
  s.submitted.fetch_add(1, std::memory_order_relaxed);
  cell.submitted.fetch_add(1, std::memory_order_relaxed);
  if (degraded) {
    s.degraded.fetch_add(1, std::memory_order_relaxed);
    cell.degraded.fetch_add(1, std::memory_order_relaxed);
  }
  queue_.push(r);
  wake_dispatcher();
  return degraded ? Admission::Degraded : Admission::Admitted;
}

void Server::wake_dispatcher() noexcept {
  // Guarded wake (the eventcount idiom): under load no dispatcher is ever
  // idle, so the common case is one acquire load, not a lock + notify on
  // every submit.  While dispatchers ARE parked, the wake_pending_ token
  // lets exactly one producer of a burst pay the lock+notify and the rest
  // skip — without it every submit in the park window serializes on
  // wake_mutex_.  None of this is a seq_cst Dekker handshake; a missed
  // wake only costs the park's 1 ms timeout, never a hang.
  if (idle_dispatchers_.load(std::memory_order_acquire) == 0) return;
  if (wake_pending_.exchange(true, std::memory_order_seq_cst)) return;
  {
    support::MutexLock lock(wake_mutex_);
    wake_cv_.notify_one();
  }
  wake_pending_.store(false, std::memory_order_release);
}

std::size_t Server::drain_staging() {
  std::size_t moved = 0;
  // pop_all_fifo is a single exchange, so N dispatchers draining the same
  // queue each take a disjoint batch; the per-class heap then restores a
  // global order (EDF) regardless of which dispatcher carried the request.
  while (Request* head = queue_.pop_all_fifo()) {
    while (head != nullptr) {
      Request* next = head->next;
      class_ref(head->cls).edf.push(head);
      ++moved;
      head = next;
    }
  }
  return moved;
}

std::size_t Server::issue_edf(double* rotor, bool bounded) {
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  const std::size_t window = window_for();
  std::size_t issued = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    ClassState& s = *classes_[i].load(std::memory_order_acquire);
    while (s.edf.size() > 0) {
      if (bounded &&
          s.in_runtime.load(std::memory_order_relaxed) >= window) {
        break;
      }
      Request* r = s.edf.try_pop();
      if (r == nullptr) break;  // another dispatcher won the race
      // Lazy deadline-expiry shed: a request whose deadline already passed
      // while it waited in the heap cannot meet its objective — spending a
      // window slot and a worker on it only delays the requests behind it.
      // Checked at pop (EDF order means everything deeper is no older), so
      // an idle server pays nothing for it.
      if (s.cfg.shed_expired && r->deadline_ns < support::now_ns()) {
        TenantState& t = tenant_ref(r->tenant);
        s.expired.fetch_add(1, std::memory_order_relaxed);
        t.cells[r->cls].expired.fetch_add(1, std::memory_order_relaxed);
        expire_admitted(r);
        ++issued;
        continue;
      }
      dispatch(r, rotor);
      ++issued;
    }
  }
  return issued;
}

bool Server::has_issuable() const noexcept {
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  const std::size_t window = window_for();
  for (std::uint32_t i = 0; i < n; ++i) {
    const ClassState& s = *classes_[i].load(std::memory_order_acquire);
    if (s.edf.size() > 0 &&
        s.in_runtime.load(std::memory_order_relaxed) < window) {
      return true;
    }
  }
  return false;
}

void Server::dispatcher_loop(unsigned index) {
  using namespace std::chrono_literals;
  if (options_.thread_start_hook) options_.thread_start_hook("dispatcher", index);
  // Per-dispatcher perforation rotors: each dispatcher enforces the drop
  // fraction over its own issue stream, so N dispatchers never race on an
  // accumulator (the aggregate drop rate converges to the same level).
  std::vector<double> rotor(kMaxClasses, 0.0);
  while (true) {
    const std::size_t moved = drain_staging();
    const std::size_t issued = issue_edf(rotor.data(), /*bounded=*/true);
    if (moved + issued != 0) continue;

    if (!running_.load(std::memory_order_acquire)) break;
    // Two-phase park: announce idle, re-check, then wait with a timeout
    // backstop (the count+notify pair handles the common case; the timeout
    // makes a lost wakeup cost 1 ms, never a hang).  Completions re-open
    // dispatch windows, so they wake us too (see complete()).
    idle_dispatchers_.fetch_add(1, std::memory_order_seq_cst);
    if (!queue_.empty() || has_issuable() ||
        !running_.load(std::memory_order_acquire)) {
      idle_dispatchers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    {
      support::MutexLock lock(wake_mutex_);
      wake_cv_.wait_for(lock.native(), 1ms, [this] {
        return !queue_.empty() || has_issuable() ||
               !running_.load(std::memory_order_acquire);
      });
    }
    idle_dispatchers_.fetch_sub(1, std::memory_order_relaxed);
  }

  // Graceful drain: issue everything admitted before the stop — ignoring
  // dispatch windows, there is nothing left to reorder against — then let
  // the runtime finish it.  Every dispatcher drains (staging batches and
  // heap pops both hand out disjoint requests) and every dispatcher
  // barriers, so close() joining any of them implies the admitted work is
  // done.  Task-body exceptions are the application's concern (request
  // bodies are expected to capture their own failures); swallow rather
  // than tear down the process from a detached context.
  for (;;) {
    const std::size_t moved = drain_staging();
    const std::size_t issued = issue_edf(rotor.data(), /*bounded=*/false);
    if (moved + issued == 0) break;
  }
  try {
    runtime_->wait_all();
  } catch (...) {
  }
}

void Server::drop_admitted(Request* r) {
  ClassState& s = class_ref(r->cls);
  TenantState& t = tenant_ref(r->tenant);
  Cell& cell = t.cells[r->cls];
  if (r->job.on_drop) {
    try {
      r->job.on_drop();
    } catch (...) {
    }
  }
  cell.in_flight.fetch_sub(1, std::memory_order_relaxed);
  t.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  request_unref(r, 1);
}

void Server::expire_admitted(Request* r) {
  ClassState& s = class_ref(r->cls);
  TenantState& t = tenant_ref(r->tenant);
  Cell& cell = t.cells[r->cls];
  // Expiry is still a drop from the client's perspective, but the frontend
  // may want to answer with a distinct status — on_expire when provided,
  // the plain drop callback otherwise.
  const auto& cb = r->job.on_expire ? r->job.on_expire : r->job.on_drop;
  if (cb) {
    try {
      cb();
    } catch (...) {
    }
  }
  cell.in_flight.fetch_sub(1, std::memory_order_relaxed);
  t.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  request_unref(r, 1);
}

void Server::request_unref(Request* r, int n) {
  // acq_rel: the releasing side publishes its writes to the node, the last
  // owner acquires them before recycling it.
  if (r->owners.fetch_sub(n, std::memory_order_acq_rel) == n) {
    pool_.release(r);
  }
}

void Server::watchdog_link(ClassState& s, Request* r) {
  support::SpinLockGuard lock(s.wd_lock);
  r->wd_prev = nullptr;
  r->wd_next = s.wd_head;
  if (s.wd_head != nullptr) s.wd_head->wd_prev = r;
  s.wd_head = r;
}

bool Server::watchdog_unlink(ClassState& s, Request* r) {
  if (s.cfg.watchdog_ns <= 0) return false;
  support::SpinLockGuard lock(s.wd_lock);
  // Already claimed by the sweep: the sweep nulled both links and advanced
  // wd_head past us.
  if (r->wd_prev == nullptr && r->wd_next == nullptr && s.wd_head != r) {
    return false;
  }
  if (r->wd_prev != nullptr) {
    r->wd_prev->wd_next = r->wd_next;
  } else {
    s.wd_head = r->wd_next;
  }
  if (r->wd_next != nullptr) r->wd_next->wd_prev = r->wd_prev;
  r->wd_prev = nullptr;
  r->wd_next = nullptr;
  return true;
}

void Server::watchdog_sweep() {
  const std::int64_t now = support::now_ns();
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    ClassState& s = *classes_[i].load(std::memory_order_acquire);
    if (s.cfg.watchdog_ns <= 0) continue;

    // Collect overdue entries under the lock, resolve them outside it: the
    // timeout callbacks are user code and must not run under a spinlock.
    // The overdue chain reuses wd_next (each node is unlinked first).
    Request* overdue = nullptr;
    {
      support::SpinLockGuard lock(s.wd_lock);
      Request* cur = s.wd_head;
      while (cur != nullptr) {
        Request* next = cur->wd_next;
        if (now - cur->issue_ns > s.cfg.watchdog_ns) {
          if (cur->wd_prev != nullptr) {
            cur->wd_prev->wd_next = cur->wd_next;
          } else {
            s.wd_head = cur->wd_next;
          }
          if (cur->wd_next != nullptr) cur->wd_next->wd_prev = cur->wd_prev;
          cur->wd_prev = nullptr;
          cur->wd_next = overdue;
          overdue = cur;
        }
        cur = next;
      }
    }

    while (overdue != nullptr) {
      Request* r = overdue;
      overdue = r->wd_next;
      r->wd_next = nullptr;
      // Race with a completing body: whoever flips `resolved` does the
      // accounting.  Losing here means the body finished between the
      // collection above and now — nothing to do but drop our ref.
      if (!r->resolved.exchange(true, std::memory_order_acq_rel)) {
        TenantState& t = tenant_ref(r->tenant);
        Cell& cell = t.cells[r->cls];
        s.timed_out.fetch_add(1, std::memory_order_relaxed);
        cell.timed_out.fetch_add(1, std::memory_order_relaxed);
        // A timeout is served as a drop (conservation: every admitted
        // request lands in exactly one served_* bucket); no latency sample
        // — the stuck body's eventual finish time is not a service time.
        s.served_dropped.fetch_add(1, std::memory_order_relaxed);
        cell.served_dropped.fetch_add(1, std::memory_order_relaxed);
        const auto& cb = r->job.on_timeout ? r->job.on_timeout : r->job.on_drop;
        if (cb) {
          try {
            cb();
          } catch (...) {
          }
        }
        s.in_runtime.fetch_sub(1, std::memory_order_relaxed);
        cell.in_flight.fetch_sub(1, std::memory_order_relaxed);
        t.in_flight.fetch_sub(1, std::memory_order_acq_rel);
        s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
        if (s.edf.size() > 0) wake_dispatcher();
      }
      request_unref(r, 1);
    }
  }
}

void Server::dispatch(Request* r, double* rotor) {
  ClassState& s = class_ref(r->cls);

  // Rung 2 of the ladder: drop a deterministic fraction of admitted
  // requests outright.  The rotor is dispatcher-local; the level is set by
  // the controller thread.  Perforated requests complete for accounting but
  // record no latency — their ~0 queue time would mask the overload the
  // controller is reacting to.
  rotor[r->cls] += s.perforation.load(std::memory_order_relaxed);
  if (rotor[r->cls] >= 1.0) {
    rotor[r->cls] -= 1.0;
    TenantState& t = tenant_ref(r->tenant);
    s.perforated.fetch_add(1, std::memory_order_relaxed);
    t.cells[r->cls].perforated.fetch_add(1, std::memory_order_relaxed);
    drop_admitted(r);
    return;
  }

  s.in_runtime.fetch_add(1, std::memory_order_relaxed);

  // Watchdog registration: the controller sweeps issued requests overdue
  // past cfg.watchdog_ns and resolves them as drops even when their body is
  // stuck or faulted.  The sweep and the body race on the node, so the
  // watchdog takes its own ownership ref (see the owners protocol).
  if (s.cfg.watchdog_ns > 0) {
    r->issue_ns = support::now_ns();
    r->owners.fetch_add(1, std::memory_order_relaxed);
    watchdog_link(s, r);
  }

  // may_block classes hand the worker slot to a spare for the body's
  // duration (Runtime::BlockingSection) so a body stalled on external I/O
  // does not idle a core; the thread re-pools when the body unwinds.
  const bool may_block = s.cfg.may_block;

  // The body's ownership reference rides inside the callables, not inside
  // complete(): an injected crash (or a runtime-side drop) can unwind the
  // task before either lambda runs, so complete() is not guaranteed to
  // execute.  The slab slot destroys its callables on retirement on every
  // path — normal completion, body exception, crash upstream of the
  // wrapper — which makes a by-value RAII capture the one release point
  // that cannot be skipped.  Copies (one per stored callable) each add a
  // reference; the original adopts the admission reference.
  struct BodyRef {
    Server* srv;
    Request* req;
    BodyRef(Server* s, Request* r) : srv(s), req(r) {}
    BodyRef(const BodyRef& o) : srv(o.srv), req(o.req) {
      req->owners.fetch_add(1, std::memory_order_relaxed);
    }
    BodyRef(BodyRef&& o) noexcept : srv(o.srv), req(o.req) {
      o.srv = nullptr;
    }
    BodyRef& operator=(const BodyRef&) = delete;
    BodyRef& operator=(BodyRef&&) = delete;
    ~BodyRef() {
      if (srv != nullptr) srv->request_unref(req, 1);
    }
  };
  BodyRef body_ref(this, r);  // adopts the admission reference

  // A throwing body resolves as a drop rather than stranding its in-flight
  // slot (which would hang drain/close and leak the node) or tearing down
  // the worker.  Serve-tier bodies are expected to capture their own
  // failures; this is the backstop.
  auto approx_body = [this, r, may_block, body_ref] {
    if (may_block) (void)runtime_->begin_blocking();
    if (r->job.approximate) {
      try {
        r->job.approximate();
      } catch (...) {
        complete(r, Outcome::Dropped);
        return;
      }
      complete(r, Outcome::Approximate);
    } else {
      complete(r, Outcome::Dropped);  // drop-style class: empty response
    }
  };

  if (r->degraded) {
    // Degraded admission: both bodies are the cheap path, so the request is
    // served cheaply whatever the classifier decides.
    runtime_->spawn(task(approx_body)
                        .approx(approx_body)
                        .significance(0.0)
                        .group(s.group));
  } else {
    runtime_->spawn(task([this, r, may_block, body_ref] {
                      if (may_block) (void)runtime_->begin_blocking();
                      try {
                        r->job.accurate();
                      } catch (...) {
                        complete(r, Outcome::Dropped);
                        return;
                      }
                      complete(r, Outcome::Accurate);
                    })
                        .approx(approx_body)
                        .significance(r->job.significance)
                        .group(s.group));
  }
}

void Server::complete(Request* r, Outcome outcome) {
  ClassState& s = class_ref(r->cls);
  // Leave the watchdog registry before resolving: once unlinked the sweep
  // can never collect us.  was_linked tells us whether the watchdog's
  // ownership ref is still ours to drop (the sweep drops its own).
  const bool was_linked = watchdog_unlink(s, r);
  if (!r->resolved.exchange(true, std::memory_order_acq_rel)) {
    TenantState& t = tenant_ref(r->tenant);
    Cell& cell = t.cells[r->cls];
    const std::int64_t latency = support::now_ns() - r->arrival_ns;
    s.latency.record(latency > 0 ? static_cast<std::uint64_t>(latency) : 0);
    switch (outcome) {
      case Outcome::Accurate:
        s.served_accurate.fetch_add(1, std::memory_order_relaxed);
        cell.served_accurate.fetch_add(1, std::memory_order_relaxed);
        break;
      case Outcome::Approximate:
        s.served_approximate.fetch_add(1, std::memory_order_relaxed);
        cell.served_approximate.fetch_add(1, std::memory_order_relaxed);
        break;
      case Outcome::Dropped:
        s.served_dropped.fetch_add(1, std::memory_order_relaxed);
        cell.served_dropped.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    s.in_runtime.fetch_sub(1, std::memory_order_relaxed);
    cell.in_flight.fetch_sub(1, std::memory_order_relaxed);
    t.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    // The freed window slot may unblock this class's EDF backlog; the
    // guarded wake is one relaxed load when no dispatcher is parked.
    if (s.edf.size() > 0) wake_dispatcher();
  }
  // else: the watchdog sweep already resolved this request as timed-out
  // while the body was still running; the accounting is done.
  //
  // Only the watchdog's reference is dropped here (and only when the sweep
  // has not already dropped its own).  The body's reference lives in the
  // task's callables (see BodyRef in dispatch) and drops at slab
  // retirement, which covers bodies that never ran at all.
  if (was_linked) request_unref(r, 1);
}

void Server::controller_loop() {
  if (options_.thread_start_hook) options_.thread_start_hook("controller", 0);
  while (true) {
    {
      support::MutexLock lock(controller_mutex_);
      // TSA cannot see that the predicate runs with controller_mutex_ held
      // by wait_for; the surrounding scope holds the capability.
      controller_cv_.wait_for(
          lock.native(),
          std::chrono::duration<double, std::milli>(options_.epoch_ms),
          [this]() SIGRT_NO_THREAD_SAFETY_ANALYSIS { return controller_stop_; });
      if (controller_stop_) return;
    }
    controller_tick();
  }
}

void Server::controller_tick() {
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    ClassState& s = *classes_[i].load(std::memory_order_acquire);

    // Window = cumulative snapshot minus the previous epoch's snapshot.
    support::Histogram merged = s.latency.merged();
    support::Histogram window = merged;
    window.subtract(s.window_prev);
    s.window_prev = merged;

    QosObservation obs;
    obs.p99_ns = window.quantile(0.99);
    obs.completed = window.count();
    obs.in_flight = s.in_flight.load(std::memory_order_relaxed);

    const QosDecision d = s.qos.update(obs);
    // The non-master set_ratio path: a relaxed retarget of the group's
    // atomic ratio; workers classifying concurrently observe either value.
    runtime_->set_ratio(s.group, d.ratio);
    s.perforation.store(d.perforation, std::memory_order_relaxed);
  }
  // Piggyback the watchdog on the controller's epoch cadence: timeout
  // granularity is one epoch, which is the resolution the QoS loop already
  // commits to.
  watchdog_sweep();
}

void Server::drain() {
  {
    support::MutexLock lock(close_mutex_);
    if (drained_) return;
    drained_ = true;
  }
  // Phase 1: quiesce admission.  Every subsequent submit sheds at the top;
  // only racers already past the accepting_ check can still enqueue.
  accepting_.store(false, std::memory_order_release);

  // Phase 2: serve the backlog.  Dispatchers and the controller are still
  // running, so the EDF heaps drain in deadline order, perforation and
  // expiry still apply, and the watchdog still resolves stuck requests —
  // nothing admitted is shed by the drain itself.  in_flight covers the
  // whole pipeline (staged + heaped + in-runtime), so zero across every
  // class means the pipeline is empty.
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  for (;;) {
    bool quiescent = queue_.empty();
    for (std::uint32_t i = 0; i < n && quiescent; ++i) {
      quiescent = classes_[i].load(std::memory_order_acquire)
                      ->in_flight.load(std::memory_order_acquire) == 0;
    }
    if (quiescent) break;
    wake_dispatcher();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  // Phase 3: stop the service threads.
  if (controller_.joinable()) {
    {
      support::MutexLock lock(controller_mutex_);
      controller_stop_ = true;
    }
    controller_cv_.notify_one();
    controller_.join();
  }

  running_.store(false, std::memory_order_release);
  {
    // Shutdown wake: every parked dispatcher must observe the flag.
    support::MutexLock lock(wake_mutex_);
    wake_cv_.notify_all();
  }
  for (auto& d : dispatchers_) {
    if (d.joinable()) d.join();
  }
}

void Server::close() {
  {
    support::MutexLock lock(close_mutex_);
    if (closed_) return;
    closed_ = true;
  }
  drain();

  // Shed anything that raced the intake flip.  A racer that passed the
  // accepting_ check holds its reservations from before its push, and
  // everything the dispatchers admitted has completed (wait_all above), so
  // nonzero in_flight now means exactly "a submit is between its
  // reservation and its push" — a few instructions away.  Loop until every
  // reservation is either pushed-and-shed here or released by the racer's
  // own over-capacity path, so no Request leaks and no slot stays stranded.
  // on_drop still fires for these (the network frontend answers the client
  // with a shed status instead of hanging the connection).
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  for (;;) {
    while (Request* head = queue_.pop_all_fifo()) {
      while (head != nullptr) {
        Request* next = head->next;
        ClassState& s = class_ref(head->cls);
        TenantState& t = tenant_ref(head->tenant);
        s.shed.fetch_add(1, std::memory_order_relaxed);
        t.cells[head->cls].shed.fetch_add(1, std::memory_order_relaxed);
        drop_admitted(head);
        head = next;
      }
    }
    bool quiescent = true;
    for (std::uint32_t i = 0; i < n && quiescent; ++i) {
      quiescent = classes_[i].load(std::memory_order_acquire)
                      ->in_flight.load(std::memory_order_acquire) == 0;
    }
    // in_flight hits zero at complete(), but the last ownership reference
    // drops at task-slab retirement on a worker thread (BodyRef); wait for
    // every node to be back in the pool so destruction cannot race a
    // retiring task, and so callers observe the full shutdown contract
    // (every Job destroyed, every on_timeout guard dropped).
    quiescent = quiescent && pool_.outstanding() == 0;
    if (quiescent) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

ClassReport Server::class_report(ClassId cls) const {
  const ClassState& s = class_ref(cls);
  ClassReport r;
  r.name = s.cfg.name;
  r.criticality = s.cfg.criticality;
  r.deadline_ms = s.cfg.qos.deadline_ns * 1e-6;
  r.ratio = runtime_->group(s.group).ratio();
  r.perforation = s.perforation.load(std::memory_order_relaxed);
  r.submitted = s.submitted.load(std::memory_order_relaxed);
  r.shed = s.shed.load(std::memory_order_relaxed);
  r.degraded = s.degraded.load(std::memory_order_relaxed);
  r.perforated = s.perforated.load(std::memory_order_relaxed);
  r.served_accurate = s.served_accurate.load(std::memory_order_relaxed);
  r.served_approximate = s.served_approximate.load(std::memory_order_relaxed);
  r.served_dropped = s.served_dropped.load(std::memory_order_relaxed);
  r.expired = s.expired.load(std::memory_order_relaxed);
  r.timed_out = s.timed_out.load(std::memory_order_relaxed);
  r.in_flight = s.in_flight.load(std::memory_order_relaxed);

  const support::Histogram h = s.latency.merged();
  r.p50_ms = h.quantile(0.5) * 1e-6;
  r.p99_ms = h.quantile(0.99) * 1e-6;
  r.mean_ms = h.mean() * 1e-6;
  return r;
}

TenantReport Server::tenant_report(TenantId tenant) const {
  const TenantState& t = tenant_ref(tenant);
  TenantReport out;
  out.id = tenant;
  out.name = t.cfg.name;
  out.in_flight = t.in_flight.load(std::memory_order_relaxed);
  out.max_in_flight = t.cfg.max_in_flight;
  out.fair_in_flight = t.cfg.fair_in_flight;
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  out.cells.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Cell& c = t.cells[i];
    TenantClassCell cell;
    cell.cls = i;
    cell.class_name = classes_[i].load(std::memory_order_acquire)->cfg.name;
    cell.submitted = c.submitted.load(std::memory_order_relaxed);
    cell.shed = c.shed.load(std::memory_order_relaxed);
    cell.degraded = c.degraded.load(std::memory_order_relaxed);
    cell.perforated = c.perforated.load(std::memory_order_relaxed);
    cell.served_accurate = c.served_accurate.load(std::memory_order_relaxed);
    cell.served_approximate =
        c.served_approximate.load(std::memory_order_relaxed);
    cell.served_dropped = c.served_dropped.load(std::memory_order_relaxed);
    cell.expired = c.expired.load(std::memory_order_relaxed);
    cell.timed_out = c.timed_out.load(std::memory_order_relaxed);
    cell.in_flight = c.in_flight.load(std::memory_order_relaxed);
    out.cells.push_back(std::move(cell));
  }
  return out;
}

ServerStats Server::stats() const {
  ServerStats out;
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  out.classes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.classes.push_back(class_report(i));
  const std::uint32_t tn = tenant_count_.load(std::memory_order_acquire);
  out.tenants.reserve(tn);
  for (std::uint32_t i = 0; i < tn; ++i) out.tenants.push_back(tenant_report(i));
  return out;
}

void Server::reset_latency_stats() {
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    classes_[i].load(std::memory_order_acquire)->latency.reset();
  }
}

}  // namespace sigrt::serve
