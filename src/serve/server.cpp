#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/task_options.hpp"
#include "support/timer.hpp"

namespace sigrt::serve {

namespace {

/// Serving constraints on the runtime configuration (see ServerOptions).
RuntimeConfig serving_config(RuntimeConfig c) {
  if (c.policy != PolicyKind::LQH && c.policy != PolicyKind::Agnostic) {
    // GTB-family policies buffer tasks until a window fills or a barrier
    // flushes; a server never reaches a barrier, so low-rate requests would
    // wait unboundedly.  LQH classifies at dequeue with zero buffering.
    c.policy = PolicyKind::LQH;
  }
  // The per-task log grows forever under open-ended traffic.
  c.record_task_log = false;
  // Every admitted request must complete exactly one body; NTC fault
  // injection silently drops approximate tasks without running them.
  c.unreliable_workers = 0;
  c.unreliable_fault_rate = 0.0;
  return c;
}

/// Dispatcher-tier width.  Inline mode (workers == 0) executes on the
/// enqueuing thread over an unsynchronized queue — single client thread
/// only — so a sharded dispatcher tier would race on it; sharding
/// requires real workers.
unsigned dispatcher_count(const ServerOptions& options) {
  const unsigned requested = std::max(1u, options.dispatcher_threads);
  return options.runtime.workers == 0 ? 1u : requested;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      runtime_(std::make_unique<Runtime>(serving_config(options.runtime))) {
  for (auto& slot : classes_) slot.store(nullptr, std::memory_order_relaxed);
  const unsigned dispatchers = dispatcher_count(options_);
  // Any failure past the first thread must stop and join what already
  // started — destroying a joinable std::thread terminates.
  try {
    dispatchers_.reserve(dispatchers);
    for (unsigned i = 0; i < dispatchers; ++i) {
      dispatchers_.emplace_back([this] { dispatcher_loop(); });
    }
    if (options_.epoch_ms > 0.0) {
      controller_ = std::thread([this] { controller_loop(); });
    }
  } catch (...) {
    running_.store(false, std::memory_order_release);
    {
      std::lock_guard lock(wake_mutex_);
      wake_cv_.notify_all();
    }
    for (auto& d : dispatchers_) d.join();
    throw;
  }
}

Server::~Server() { close(); }

ClassId Server::register_class(RequestClassConfig config) {
  std::lock_guard lock(register_mutex_);
  const std::uint32_t id = class_count_.load(std::memory_order_relaxed);
  if (id >= kMaxClasses) {
    throw std::length_error("serve::Server: too many request classes");
  }
  const unsigned shards = options_.histogram_shards != 0
                              ? options_.histogram_shards
                              : runtime_->config().workers + 1;
  auto state = std::make_unique<ClassState>(std::move(config), shards);
  state->group = runtime_->create_group("serve/" + state->cfg.name,
                                        state->cfg.qos.initial_ratio);
  ClassState* ptr = state.get();
  owned_classes_.push_back(std::move(state));
  classes_[id].store(ptr, std::memory_order_release);
  class_count_.store(id + 1, std::memory_order_release);
  return id;
}

Server::ClassState& Server::class_ref(ClassId cls) const {
  if (cls >= class_count_.load(std::memory_order_acquire)) {
    throw std::out_of_range("serve::Server: unknown request class");
  }
  return *classes_[cls].load(std::memory_order_acquire);
}

Admission Server::submit(ClassId cls, Job job) {
  ClassState& s = class_ref(cls);
  if (!accepting_.load(std::memory_order_acquire)) {
    s.shed.fetch_add(1, std::memory_order_relaxed);
    return Admission::Shed;
  }

  // Admission bound on *in-flight* requests (queued + executing), so the
  // back-pressure survives the hand-off into the scheduler.  Optimistic
  // reserve-then-check keeps the hot path to one RMW.
  const std::size_t depth =
      s.in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > s.cfg.max_in_flight) {
    s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    s.shed.fetch_add(1, std::memory_order_relaxed);
    return Admission::Shed;
  }
  const bool degraded =
      s.cfg.degrade_in_flight != 0 && depth > s.cfg.degrade_in_flight;

  auto* r = new Request{std::move(job), cls, support::now_ns(), degraded, nullptr};
  s.submitted.fetch_add(1, std::memory_order_relaxed);
  if (degraded) s.degraded.fetch_add(1, std::memory_order_relaxed);
  queue_.push(r);
  wake_dispatcher();
  return degraded ? Admission::Degraded : Admission::Admitted;
}

void Server::wake_dispatcher() noexcept {
  // Guarded wake (the eventcount idiom): under load no dispatcher is ever
  // idle, so the common case is one acquire load, not a lock + notify on
  // every submit.  While dispatchers ARE parked, the wake_pending_ token
  // lets exactly one producer of a burst pay the lock+notify and the rest
  // skip — without it every submit in the park window serializes on
  // wake_mutex_.  None of this is a seq_cst Dekker handshake; a missed
  // wake only costs the park's 1 ms timeout, never a hang.
  if (idle_dispatchers_.load(std::memory_order_acquire) == 0) return;
  if (wake_pending_.exchange(true, std::memory_order_seq_cst)) return;
  {
    std::lock_guard lock(wake_mutex_);
    wake_cv_.notify_one();
  }
  wake_pending_.store(false, std::memory_order_release);
}

void Server::dispatcher_loop() {
  using namespace std::chrono_literals;
  // Per-dispatcher perforation rotors: each dispatcher enforces the drop
  // fraction over its own batch stream, so N dispatchers never race on an
  // accumulator (the aggregate drop rate converges to the same level).
  std::vector<double> rotor(kMaxClasses, 0.0);
  while (true) {
    // pop_all_fifo is a single exchange, so N dispatchers draining the
    // same queue each take a disjoint FIFO batch.
    Request* head = queue_.pop_all_fifo();
    if (head == nullptr) {
      if (!running_.load(std::memory_order_acquire)) break;
      // Two-phase park: announce idle, re-check, then wait with a timeout
      // backstop (the count+notify pair handles the common case; the
      // timeout makes a lost wakeup cost 1 ms, never a hang).
      idle_dispatchers_.fetch_add(1, std::memory_order_seq_cst);
      if (!queue_.empty() || !running_.load(std::memory_order_acquire)) {
        idle_dispatchers_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      {
        std::unique_lock lock(wake_mutex_);
        wake_cv_.wait_for(lock, 1ms, [this] {
          return !queue_.empty() || !running_.load(std::memory_order_acquire);
        });
      }
      idle_dispatchers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    while (head != nullptr) {
      Request* next = head->next;
      dispatch(head, rotor.data());
      head = next;
    }
  }

  // Graceful drain: serve everything admitted before the stop, then let the
  // runtime finish it.  Every dispatcher drains (the exchange hands each a
  // disjoint remainder) and every dispatcher barriers, so close() joining
  // any of them implies the admitted work is done.  Task-body exceptions
  // are the application's concern (request bodies are expected to capture
  // their own failures); swallow rather than tear down the process from a
  // detached context.
  while (Request* head = queue_.pop_all_fifo()) {
    while (head != nullptr) {
      Request* next = head->next;
      dispatch(head, rotor.data());
      head = next;
    }
  }
  try {
    runtime_->wait_all();
  } catch (...) {
  }
}

void Server::dispatch(Request* r, double* rotor) {
  ClassState& s = class_ref(r->cls);

  // Rung 2 of the ladder: drop a deterministic fraction of admitted
  // requests outright.  The rotor is dispatcher-local; the level is set by
  // the controller thread.  Perforated requests complete for accounting but
  // record no latency — their ~0 queue time would mask the overload the
  // controller is reacting to.
  rotor[r->cls] += s.perforation.load(std::memory_order_relaxed);
  if (rotor[r->cls] >= 1.0) {
    rotor[r->cls] -= 1.0;
    s.perforated.fetch_add(1, std::memory_order_relaxed);
    s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
    delete r;
    return;
  }

  auto approx_body = [this, r] {
    if (r->job.approximate) {
      r->job.approximate();
      complete(r, Outcome::Approximate);
    } else {
      complete(r, Outcome::Dropped);  // drop-style class: empty response
    }
  };

  if (r->degraded) {
    // Degraded admission: both bodies are the cheap path, so the request is
    // served cheaply whatever the classifier decides.
    runtime_->spawn(task(approx_body)
                        .approx(approx_body)
                        .significance(0.0)
                        .group(s.group));
  } else {
    runtime_->spawn(task([this, r] {
                      r->job.accurate();
                      complete(r, Outcome::Accurate);
                    })
                        .approx(approx_body)
                        .significance(r->job.significance)
                        .group(s.group));
  }
}

void Server::complete(Request* r, Outcome outcome) {
  ClassState& s = class_ref(r->cls);
  const std::int64_t latency = support::now_ns() - r->arrival_ns;
  s.latency.record(latency > 0 ? static_cast<std::uint64_t>(latency) : 0);
  switch (outcome) {
    case Outcome::Accurate:
      s.served_accurate.fetch_add(1, std::memory_order_relaxed);
      break;
    case Outcome::Approximate:
      s.served_approximate.fetch_add(1, std::memory_order_relaxed);
      break;
    case Outcome::Dropped:
      s.served_dropped.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  delete r;
}

void Server::controller_loop() {
  while (true) {
    {
      std::unique_lock lock(controller_mutex_);
      controller_cv_.wait_for(
          lock, std::chrono::duration<double, std::milli>(options_.epoch_ms),
          [this] { return controller_stop_; });
      if (controller_stop_) return;
    }
    controller_tick();
  }
}

void Server::controller_tick() {
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    ClassState& s = *classes_[i].load(std::memory_order_acquire);

    // Window = cumulative snapshot minus the previous epoch's snapshot.
    support::Histogram merged = s.latency.merged();
    support::Histogram window = merged;
    window.subtract(s.window_prev);
    s.window_prev = merged;

    QosObservation obs;
    obs.p99_ns = window.quantile(0.99);
    obs.completed = window.count();
    obs.in_flight = s.in_flight.load(std::memory_order_relaxed);

    const QosDecision d = s.qos.update(obs);
    // The non-master set_ratio path: a relaxed retarget of the group's
    // atomic ratio; workers classifying concurrently observe either value.
    runtime_->set_ratio(s.group, d.ratio);
    s.perforation.store(d.perforation, std::memory_order_relaxed);
  }
}

void Server::close() {
  {
    std::lock_guard lock(close_mutex_);
    if (closed_) return;
    closed_ = true;
  }
  accepting_.store(false, std::memory_order_release);

  if (controller_.joinable()) {
    {
      std::lock_guard lock(controller_mutex_);
      controller_stop_ = true;
    }
    controller_cv_.notify_one();
    controller_.join();
  }

  running_.store(false, std::memory_order_release);
  {
    // Shutdown wake: every parked dispatcher must observe the flag.
    std::lock_guard lock(wake_mutex_);
    wake_cv_.notify_all();
  }
  for (auto& d : dispatchers_) {
    if (d.joinable()) d.join();
  }

  // Shed anything that raced the intake flip.  A racer that passed the
  // accepting_ check holds an in_flight reservation from before its push,
  // and everything the dispatcher admitted has completed (wait_all above),
  // so nonzero in_flight now means exactly "a submit is between its
  // reservation and its push" — a few instructions away.  Loop until every
  // reservation is either pushed-and-shed here or released by the racer's
  // own over-capacity path, so no Request leaks and no slot stays stranded.
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  for (;;) {
    while (Request* head = queue_.pop_all_fifo()) {
      while (head != nullptr) {
        Request* next = head->next;
        ClassState& s = class_ref(head->cls);
        s.shed.fetch_add(1, std::memory_order_relaxed);
        s.in_flight.fetch_sub(1, std::memory_order_acq_rel);
        delete head;
        head = next;
      }
    }
    bool quiescent = true;
    for (std::uint32_t i = 0; i < n && quiescent; ++i) {
      quiescent = classes_[i].load(std::memory_order_acquire)
                      ->in_flight.load(std::memory_order_acquire) == 0;
    }
    if (quiescent) break;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

ClassReport Server::class_report(ClassId cls) const {
  const ClassState& s = class_ref(cls);
  ClassReport r;
  r.name = s.cfg.name;
  r.deadline_ms = s.cfg.qos.deadline_ns * 1e-6;
  r.ratio = runtime_->group(s.group).ratio();
  r.perforation = s.perforation.load(std::memory_order_relaxed);
  r.submitted = s.submitted.load(std::memory_order_relaxed);
  r.shed = s.shed.load(std::memory_order_relaxed);
  r.degraded = s.degraded.load(std::memory_order_relaxed);
  r.perforated = s.perforated.load(std::memory_order_relaxed);
  r.served_accurate = s.served_accurate.load(std::memory_order_relaxed);
  r.served_approximate = s.served_approximate.load(std::memory_order_relaxed);
  r.served_dropped = s.served_dropped.load(std::memory_order_relaxed);
  r.in_flight = s.in_flight.load(std::memory_order_relaxed);

  const support::Histogram h = s.latency.merged();
  r.p50_ms = h.quantile(0.5) * 1e-6;
  r.p99_ms = h.quantile(0.99) * 1e-6;
  r.mean_ms = h.mean() * 1e-6;
  return r;
}

ServerStats Server::stats() const {
  ServerStats out;
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  out.classes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.classes.push_back(class_report(i));
  return out;
}

void Server::reset_latency_stats() {
  const std::uint32_t n = class_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    classes_[i].load(std::memory_order_acquire)->latency.reset();
  }
}

}  // namespace sigrt::serve
