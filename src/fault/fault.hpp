// Seeded, deterministic fault injection.
//
// A FaultPlan names, per injection site, a firing probability and a site
// parameter (a duration for delays/stalls, a count for net sites).  Whether
// a given event fires is a PURE function of (plan seed, site, stream id,
// attempt) — `should_fire` derives a counter-based RNG stream from exactly
// those inputs (support::stream_rng), so the same plan replayed over the
// same ids produces the same faults no matter how the work is scheduled
// across threads.  Stream ids are stable entity identities: task ids at the
// runtime sites, connection/frame ordinals at the net sites.
//
// The injector is process-global and armed explicitly (tests arm, run,
// disarm).  Hot paths guard every hook behind `fault::armed()` — one
// relaxed atomic load when the framework is compiled in, a constant false
// (the whole hook folds away) when it is compiled out with
// -DSIGRT_FAULT_INJECTION=0 — so production builds keep the 0-alloc,
// branch-cheap contract measured by the micro benches.
//
// Firing decisions are recorded into an order-independent trace (per-site
// fire counts + a commutative XOR hash over the (site, stream, attempt)
// triples), which is what the chaos suite compares across runs: same seed
// => identical trace, different seed => different trace.
#pragma once

#include <cstdint>
#include <stdexcept>

#ifndef SIGRT_FAULT_INJECTION
#define SIGRT_FAULT_INJECTION 1
#endif

namespace sigrt::fault {

/// Injection sites.  Runtime sites key their stream by task id; net sites
/// by connection ordinal (ConnReset) or per-connection write ordinal
/// (ConnShortWrite).
enum class Site : unsigned {
  TaskCrash,       ///< task body throws InjectedFault
  TaskDelay,       ///< sleep param_us before the body
  TaskCorrupt,     ///< silent output corruption (unreliable workers, checked tasks)
  WorkerStall,     ///< executing worker stalls param_us (watchdog fodder)
  ConnReset,       ///< abortive close (RST via SO_LINGER 0) after a frame
  ConnShortWrite,  ///< cap one send() to a single byte
};
inline constexpr unsigned kSiteCount = 6;

struct SiteConfig {
  double probability = 0.0;    ///< in [0, 1]; 0 disables the site
  std::uint32_t param_us = 0;  ///< site parameter (duration in microseconds)
};

/// The full injection schedule: one seed, one config per site.
struct FaultPlan {
  std::uint64_t seed = 0xFA017;
  SiteConfig site[kSiteCount];

  FaultPlan& with(Site s, double probability, std::uint32_t param_us = 0) {
    site[static_cast<unsigned>(s)] = {probability, param_us};
    return *this;
  }
};

/// Thrown by the TaskCrash site inside a task body.  The runtime treats it
/// like any other body exception (redo for checked accurate tasks, drop for
/// approximate tasks) but tests can distinguish it by type.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Order-independent record of everything that fired since reset_trace().
struct Trace {
  std::uint64_t fires[kSiteCount] = {};
  std::uint64_t hash = 0;  ///< commutative XOR over mixed (site, stream, attempt)

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t f : fires) n += f;
    return n;
  }
};

#if SIGRT_FAULT_INJECTION

/// True while a plan is armed.  One relaxed load — the hot-path guard.
[[nodiscard]] bool armed() noexcept;

/// Installs `plan` and resets the trace.  Plans retired by a later arm() or
/// disarm() stay alive for the process lifetime so concurrent should_fire
/// readers never observe a freed plan (arming is a test-harness operation,
/// not a hot path).
void arm(const FaultPlan& plan);

/// Stops all injection.  Idempotent.
void disarm() noexcept;

/// Deterministically decides whether `site` fires for stream id `stream` on
/// its `attempt`-th retry (0 = first execution).  Counts the firing into
/// the trace.  Returns false when disarmed or the site's probability is 0.
[[nodiscard]] bool should_fire(Site site, std::uint64_t stream,
                               unsigned attempt = 0) noexcept;

/// The armed plan's parameter for `site` (0 when disarmed).
[[nodiscard]] std::uint32_t param_us(Site site) noexcept;

/// Snapshot of the fire counts/hash accumulated since the last arm/reset.
[[nodiscard]] Trace trace() noexcept;
void reset_trace() noexcept;

/// True while the current thread is executing a task body on which the
/// TaskCorrupt site fired.  Fault-aware kernels (test workloads) consult
/// this to write garbage — modeling silent NTC bit-flips without the
/// runtime knowing task outputs.
[[nodiscard]] bool corrupting() noexcept;

/// RAII: marks the current thread as corrupting for one body execution.
class ScopedCorrupt {
 public:
  ScopedCorrupt() noexcept;
  ~ScopedCorrupt();
  ScopedCorrupt(const ScopedCorrupt&) = delete;
  ScopedCorrupt& operator=(const ScopedCorrupt&) = delete;
};

#else  // SIGRT_FAULT_INJECTION == 0: every hook folds to a constant.

[[nodiscard]] constexpr bool armed() noexcept { return false; }
inline void arm(const FaultPlan&) {}
inline void disarm() noexcept {}
[[nodiscard]] constexpr bool should_fire(Site, std::uint64_t,
                                         unsigned = 0) noexcept {
  return false;
}
[[nodiscard]] constexpr std::uint32_t param_us(Site) noexcept { return 0; }
[[nodiscard]] inline Trace trace() noexcept { return {}; }
inline void reset_trace() noexcept {}
[[nodiscard]] constexpr bool corrupting() noexcept { return false; }
class ScopedCorrupt {};

#endif  // SIGRT_FAULT_INJECTION

}  // namespace sigrt::fault
