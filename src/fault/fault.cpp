#include "fault/fault.hpp"

#if SIGRT_FAULT_INJECTION

#include <atomic>
#include <memory>
#include <vector>

#include "support/mutex.hpp"
#include "support/rng.hpp"

namespace sigrt::fault {
namespace {

// Per-site salt folded into the stream seed so the sites draw from
// independent streams even for the same (seed, id) pair.
constexpr std::uint64_t kSiteSalt[kSiteCount] = {
    0x7461736b63726173ULL,  // TaskCrash
    0x7461736b64656c61ULL,  // TaskDelay
    0x7461736b636f7272ULL,  // TaskCorrupt
    0x776f726b7374616cULL,  // WorkerStall
    0x636f6e6e72657365ULL,  // ConnReset
    0x636f6e6e73686f72ULL,  // ConnShortWrite
};

struct ArmedPlan {
  FaultPlan plan;
};

std::atomic<const ArmedPlan*> g_plan{nullptr};

// Retired plans are kept alive for the process lifetime: should_fire may
// hold a plan pointer across a disarm()/arm() on another thread, and
// arming is a test-harness operation where a few dozen leaked-by-design
// structs are irrelevant.
support::Mutex g_arm_mutex;
std::vector<std::unique_ptr<ArmedPlan>>& graveyard() SIGRT_REQUIRES(g_arm_mutex) {
  static std::vector<std::unique_ptr<ArmedPlan>> g;
  return g;
}

std::atomic<std::uint64_t> g_fires[kSiteCount];
std::atomic<std::uint64_t> g_hash{0};

thread_local unsigned tls_corrupt_depth = 0;

std::uint64_t mix_event(unsigned site, std::uint64_t stream,
                        unsigned attempt) noexcept {
  support::SplitMix64 m(stream ^ (kSiteSalt[site] * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(attempt) << 56));
  return m.next();
}

}  // namespace

bool armed() noexcept {
  return g_plan.load(std::memory_order_relaxed) != nullptr;
}

void arm(const FaultPlan& plan) {
  support::MutexLock lock(g_arm_mutex);
  graveyard().push_back(std::make_unique<ArmedPlan>(ArmedPlan{plan}));
  reset_trace();
  g_plan.store(graveyard().back().get(), std::memory_order_release);
}

void disarm() noexcept {
  g_plan.store(nullptr, std::memory_order_release);
}

bool should_fire(Site site, std::uint64_t stream, unsigned attempt) noexcept {
  const ArmedPlan* armed = g_plan.load(std::memory_order_acquire);
  if (armed == nullptr) return false;
  const unsigned s = static_cast<unsigned>(site);
  const SiteConfig& sc = armed->plan.site[s];
  if (sc.probability <= 0.0) return false;
  // One fresh draw per attempt from the (seed, site, stream) stream: a task
  // that crashed on attempt 0 gets an independent coin on its redo instead
  // of deterministically re-crashing forever.
  auto rng = support::stream_rng(armed->plan.seed ^ kSiteSalt[s], stream);
  double u = rng.uniform();
  for (unsigned i = 0; i < attempt; ++i) u = rng.uniform();
  if (u >= sc.probability) return false;
  g_fires[s].fetch_add(1, std::memory_order_relaxed);
  g_hash.fetch_xor(mix_event(s, stream, attempt), std::memory_order_relaxed);
  return true;
}

std::uint32_t param_us(Site site) noexcept {
  const ArmedPlan* armed = g_plan.load(std::memory_order_acquire);
  if (armed == nullptr) return 0;
  return armed->plan.site[static_cast<unsigned>(site)].param_us;
}

Trace trace() noexcept {
  Trace t;
  for (unsigned s = 0; s < kSiteCount; ++s) {
    t.fires[s] = g_fires[s].load(std::memory_order_relaxed);
  }
  t.hash = g_hash.load(std::memory_order_relaxed);
  return t;
}

void reset_trace() noexcept {
  for (auto& f : g_fires) f.store(0, std::memory_order_relaxed);
  g_hash.store(0, std::memory_order_relaxed);
}

bool corrupting() noexcept { return tls_corrupt_depth > 0; }

ScopedCorrupt::ScopedCorrupt() noexcept { ++tls_corrupt_depth; }
ScopedCorrupt::~ScopedCorrupt() { --tls_corrupt_depth; }

}  // namespace sigrt::fault

#endif  // SIGRT_FAULT_INJECTION
