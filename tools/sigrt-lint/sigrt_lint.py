#!/usr/bin/env python3
"""sigrt-lint: textual concurrency-contract checker for the sigrt tree.

Four rules, each enforcing a contract that the C++ type system cannot:

  memory-order   Every file's std::memory_order_* sites must match the
                 counts recorded in memory_order_manifest.toml, where each
                 entry names the synchronization protocol the orders belong
                 to.  Adding/removing an atomic site without updating the
                 manifest (and thinking about the protocol) is an error.
                 Entries tagged `todo = true` are tracked debt: reported as
                 warnings, not errors.
  hotpath-alloc  Functions marked SIGRT_HOT_PATH must not allocate or build
                 type-erased callables: `new`, malloc/calloc/realloc,
                 std::function, make_unique/make_shared are errors inside
                 their bodies.  Suppress a deliberate cold branch with
                 `// NOLINT(sigrt-hotpath-alloc)` on the offending line.
  inlinefn-sbo   InlineFn::kInlineBytes must equal the bound recorded in
                 the config.  Growing the SBO buffer silently would bloat
                 every pooled task slot; the config forces the bump to be
                 deliberate.  Lambdas handed to spawn()/task() with many
                 explicit captures are flagged as warnings (likely to spill
                 the SBO into static_assert territory).
  refpair        Textual retain/release pairing: for each configured pair
                 (e.g. conn_ref / conn_unref) the per-file occurrence delta
                 must match the recorded baseline.  A new unref without its
                 ref (or vice versa) shifts the delta and fails the build.

Zero third-party dependencies: pure stdlib (tomllib).  Optional libclang is
used for nothing yet -- the regex engine is the contract; keep it boring.

Usage:
  sigrt_lint.py [--root DIR] [--update-manifest] [--quiet]

Exit codes: 0 clean (warnings allowed), 1 violations, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tomllib

MEMORY_ORDERS = ("relaxed", "consume", "acquire", "release", "acq_rel",
                 "seq_cst")
MO_RE = re.compile(r"std::memory_order_(%s)\b" % "|".join(MEMORY_ORDERS))

HOTPATH_TOKEN = "SIGRT_HOT_PATH"
HOTPATH_NOLINT = "NOLINT(sigrt-hotpath-alloc)"
HOTPATH_BANNED = [
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new"),
    (re.compile(r"::new\b"), "operator new"),
    (re.compile(r"\bstd::function\b"), "std::function (type-erased heap)"),
    (re.compile(r"\bmake_unique\s*<"), "make_unique"),
    (re.compile(r"\bmake_shared\s*<"), "make_shared"),
    (re.compile(r"\b(?:std::)?malloc\s*\("), "malloc"),
    (re.compile(r"\b(?:std::)?calloc\s*\("), "calloc"),
    (re.compile(r"\b(?:std::)?realloc\s*\("), "realloc"),
]

INLINE_BYTES_RE = re.compile(
    r"kInlineBytes\s*=\s*(\d+)\s*;")
# Lambda with an explicit capture list, handed to spawn()/task(): count the
# top-level comma-separated captures.
SPAWN_LAMBDA_RE = re.compile(r"(?:spawn|task)\s*\(\s*\[([^\]]*)\]")


def strip_code(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    so reported line numbers stay correct.  NOLINT markers inside //
    comments are preserved (they are lint directives, not code)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            comment = text[i:j]
            if HOTPATH_NOLINT in comment:
                out.append("//" + HOTPATH_NOLINT)
                out.append(" " * (j - i - 2 - len(HOTPATH_NOLINT)))
            else:
                out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join("\n" if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote
                       if j - i >= 2 else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_source_files(root: pathlib.Path, subdirs):
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".hpp", ".cpp", ".h", ".cc"):
                yield path


class Report:
    def __init__(self, quiet: bool):
        self.errors = 0
        self.warnings = 0
        self.quiet = quiet

    def error(self, path, line, rule, msg):
        self.errors += 1
        print(f"{path}:{line}: error: [{rule}] {msg}")

    def warn(self, path, line, rule, msg):
        self.warnings += 1
        if not self.quiet:
            print(f"{path}:{line}: warning: [{rule}] {msg}")


# --------------------------------------------------------------------------
# Rule: memory-order manifest
# --------------------------------------------------------------------------

def count_memory_orders(stripped: str):
    counts = {}
    for m in MO_RE.finditer(stripped):
        counts[m.group(1)] = counts.get(m.group(1), 0) + 1
    return counts


def check_memory_orders(files, manifest: dict, rel, report: Report):
    entries = manifest.get("file", {})
    seen = set()
    for path, stripped in files.items():
        counts = count_memory_orders(stripped)
        key = rel(path)
        if not counts:
            continue
        seen.add(key)
        entry = entries.get(key)
        if entry is None:
            report.error(
                path, 1, "memory-order",
                f"{sum(counts.values())} memory_order site(s) but no "
                f"manifest entry; run --update-manifest and tag the "
                f"protocol")
            continue
        if entry.get("todo"):
            report.warn(path, 1, "memory-order",
                        f"manifest entry is tagged todo (protocol "
                        f"'{entry.get('protocol', '?')}') -- tracked debt")
        for order in MEMORY_ORDERS:
            want = int(entry.get(order, 0))
            got = counts.get(order, 0)
            if want != got:
                report.error(
                    path, 1, "memory-order",
                    f"memory_order_{order}: {got} site(s), manifest says "
                    f"{want} (protocol '{entry.get('protocol', '?')}'); "
                    f"re-derive the protocol, then --update-manifest")
    for key in entries:
        if key not in seen:
            report.warn(pathlib.Path(key), 1, "memory-order",
                        "stale manifest entry: file has no memory_order "
                        "sites (or no longer exists)")


def update_manifest(files, manifest_path: pathlib.Path, manifest: dict, rel):
    entries = dict(manifest.get("file", {}))
    fresh = {}
    for path, stripped in files.items():
        counts = count_memory_orders(stripped)
        if not counts:
            continue
        key = rel(path)
        old = entries.get(key, {})
        entry = {"protocol": old.get("protocol", "TODO")}
        if old.get("todo") or "protocol" not in old:
            entry["todo"] = True
        for order in MEMORY_ORDERS:
            if counts.get(order, 0):
                entry[order] = counts[order]
        fresh[key] = entry
    lines = [
        "# Per-file std::memory_order_* allowlist -- regenerate counts with",
        "#   tools/sigrt-lint/sigrt_lint.py --update-manifest",
        "# `protocol` names the synchronization protocol the orders belong",
        "# to (see docs/architecture.md); `todo = true` marks entries whose",
        "# protocol has not been re-derived yet (reported as warnings).",
        "",
    ]
    for key in sorted(fresh):
        entry = fresh[key]
        lines.append(f'[file."{key}"]')
        lines.append(f'protocol = "{entry["protocol"]}"')
        if entry.get("todo"):
            lines.append("todo = true")
        for order in MEMORY_ORDERS:
            if entry.get(order):
                lines.append(f"{order} = {entry[order]}")
        lines.append("")
    manifest_path.write_text("\n".join(lines))
    print(f"wrote {manifest_path} ({len(fresh)} files)")


# --------------------------------------------------------------------------
# Rule: hot-path allocation
# --------------------------------------------------------------------------

def hotpath_bodies(stripped: str):
    """Yields (start_line, body_text) for every SIGRT_HOT_PATH function."""
    idx = 0
    while True:
        idx = stripped.find(HOTPATH_TOKEN, idx)
        if idx == -1:
            return
        line_start = stripped.rfind("\n", 0, idx) + 1
        line = stripped[line_start:stripped.find("\n", idx)]
        if line.lstrip().startswith("#"):  # the macro definition itself
            idx += len(HOTPATH_TOKEN)
            continue
        # Find the body's opening brace; a `;` first means declaration only.
        j = idx
        while j < len(stripped) and stripped[j] not in "{;":
            j += 1
        if j >= len(stripped) or stripped[j] == ";":
            idx += len(HOTPATH_TOKEN)
            continue
        depth, k = 0, j
        while k < len(stripped):
            if stripped[k] == "{":
                depth += 1
            elif stripped[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        start_line = stripped.count("\n", 0, idx) + 1
        yield start_line, stripped[j:k + 1], stripped.count("\n", 0, j)
        idx = k if k > idx else idx + len(HOTPATH_TOKEN)


def check_hotpath(files, report: Report):
    for path, stripped in files.items():
        for fn_line, body, body_line0 in hotpath_bodies(stripped):
            for lineno0, text in enumerate(body.split("\n")):
                if HOTPATH_NOLINT in text:
                    continue
                for pattern, what in HOTPATH_BANNED:
                    if pattern.search(text):
                        report.error(
                            path, body_line0 + lineno0 + 1, "hotpath-alloc",
                            f"{what} inside SIGRT_HOT_PATH function "
                            f"(declared line {fn_line}); hoist it off the "
                            f"hot path or annotate the cold branch with "
                            f"// {HOTPATH_NOLINT}")


# --------------------------------------------------------------------------
# Rule: InlineFn SBO bound
# --------------------------------------------------------------------------

def check_inlinefn(root, files, cfg, report: Report):
    rule = cfg.get("inlinefn", {})
    want = int(rule.get("inline_bytes", 0))
    header = rule.get("header", "src/support/inline_fn.hpp")
    max_captures = int(rule.get("max_explicit_captures", 8))
    if want:
        path = root / header
        if not path.is_file():
            report.error(path, 1, "inlinefn-sbo", "configured header missing")
        else:
            m = INLINE_BYTES_RE.search(path.read_text())
            if m is None:
                report.error(path, 1, "inlinefn-sbo",
                             "kInlineBytes definition not found")
            elif int(m.group(1)) != want:
                report.error(
                    path, 1, "inlinefn-sbo",
                    f"kInlineBytes = {m.group(1)} but the recorded bound is "
                    f"{want}; every pooled task slot grows with it -- bump "
                    f"the config only after re-checking slab sizing")
    for path, stripped in files.items():
        for m in SPAWN_LAMBDA_RE.finditer(stripped):
            captures = [c for c in m.group(1).split(",") if c.strip()]
            if len(captures) > max_captures:
                line = stripped.count("\n", 0, m.start()) + 1
                report.warn(
                    path, line, "inlinefn-sbo",
                    f"lambda with {len(captures)} explicit captures handed "
                    f"to spawn/task; likely to outgrow the {want}-byte "
                    f"InlineFn buffer")


# --------------------------------------------------------------------------
# Rule: retain/release pairing
# --------------------------------------------------------------------------

def check_refpairs(files, cfg, rel, report: Report):
    for pair in cfg.get("refpair", []):
        retain, release = pair["retain"], pair["release"]
        baseline = pair.get("baseline", {})
        re_retain = re.compile(r"\b%s\s*\(" % re.escape(retain))
        re_release = re.compile(r"\b%s\s*\(" % re.escape(release))
        for path, stripped in files.items():
            n_ret = len(re_retain.findall(stripped))
            n_rel = len(re_release.findall(stripped))
            if n_ret == 0 and n_rel == 0:
                continue
            delta = n_rel - n_ret
            want = int(baseline.get(rel(path), 0))
            if delta != want:
                report.error(
                    path, 1, "refpair",
                    f"{retain}/{release} imbalance {delta:+d} "
                    f"(baseline {want:+d}): {n_ret} retain vs {n_rel} "
                    f"release site(s); pair the new site or record the "
                    f"audited baseline in sigrt_lint.toml")


# --------------------------------------------------------------------------

def main(argv):
    ap = argparse.ArgumentParser(prog="sigrt_lint.py")
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2])
    ap.add_argument("--config", type=pathlib.Path, default=None)
    ap.add_argument("--manifest", type=pathlib.Path, default=None)
    ap.add_argument("--update-manifest", action="store_true")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress warnings (errors always print)")
    args = ap.parse_args(argv)

    root = args.root.resolve()
    config_path = args.config or root / "tools" / "sigrt-lint" / "sigrt_lint.toml"
    if not config_path.is_file():
        config_path = root / "sigrt_lint.toml"  # fixture-tree layout
    if not config_path.is_file():
        print(f"sigrt-lint: config not found under {root}", file=sys.stderr)
        return 2
    with open(config_path, "rb") as f:
        cfg = tomllib.load(f)

    manifest_path = (args.manifest
                     or config_path.parent / "memory_order_manifest.toml")
    manifest = {}
    if manifest_path.is_file():
        with open(manifest_path, "rb") as f:
            manifest = tomllib.load(f)

    subdirs = cfg.get("scan", {}).get("dirs", ["src"])
    files = {}
    for path in iter_source_files(root, subdirs):
        files[path] = strip_code(path.read_text())

    def rel(path):
        return str(pathlib.Path(path).resolve().relative_to(root).as_posix())

    if args.update_manifest:
        update_manifest(files, manifest_path, manifest, rel)
        return 0

    report = Report(args.quiet)
    check_memory_orders(files, manifest, rel, report)
    check_hotpath(files, report)
    check_inlinefn(root, files, cfg, report)
    check_refpairs(files, cfg, rel, report)

    status = "FAIL" if report.errors else "OK"
    print(f"sigrt-lint: {status} -- {len(files)} files, "
          f"{report.errors} error(s), {report.warnings} warning(s)")
    return 1 if report.errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
