#!/usr/bin/env python3
"""sigrt-lint self-test: the fixture corpus under fixtures/ is the lint
tool's test suite.  fixtures/pass must lint clean; every fixtures/violate_*
tree must fail with at least one error naming its rule.  Run as a ctest
(`lint_selftest`) so a lint regression fails the ordinary test suite, not
just CI."""

import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
LINT = HERE / "sigrt_lint.py"
FIXTURES = HERE / "fixtures"

EXPECT_RULE = {
    "violate_memory_order": "[memory-order]",
    "violate_hotpath": "[hotpath-alloc]",
    "violate_inlinefn": "[inlinefn-sbo]",
    "violate_refpair": "[refpair]",
}


def run(root):
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(root)],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    rc, out = run(FIXTURES / "pass")
    if rc != 0:
        failures.append(f"pass fixture: expected exit 0, got {rc}\n{out}")

    for name, rule in sorted(EXPECT_RULE.items()):
        rc, out = run(FIXTURES / name)
        if rc != 1:
            failures.append(f"{name}: expected exit 1, got {rc}\n{out}")
        elif rule not in out:
            failures.append(f"{name}: no {rule} error in output\n{out}")

    # The real tree must lint clean too -- the selftest doubles as the
    # repo-wide gate when CI has no separate lint job.
    rc, out = run(HERE.parents[1])
    if rc != 0:
        failures.append(f"repository tree: expected exit 0, got {rc}\n{out}")

    if failures:
        print("sigrt-lint selftest: FAIL")
        for f in failures:
            print("---\n" + f)
        return 1
    print(f"sigrt-lint selftest: OK ({1 + len(EXPECT_RULE) + 1} trees)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
