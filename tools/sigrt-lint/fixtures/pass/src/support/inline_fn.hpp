// Fixture stand-in for the real InlineFn header.
#pragma once
#include <cstddef>

struct InlineFn {
  static constexpr std::size_t kInlineBytes = 64;
};
