// Passing fixture: exercises every rule's happy path.
//
//   * memory-order: two sites, both recorded in the manifest.
//   * hotpath-alloc: a SIGRT_HOT_PATH function that only pops a freelist,
//     plus a suppressed cold-path allocation.
//   * refpair: one thing_ref / one thing_unref -> delta 0.
//   * inlinefn: src/support/inline_fn.hpp matches the configured bound.
#include <atomic>

#define SIGRT_HOT_PATH

struct Node {
  Node* next = nullptr;
};

std::atomic<Node*> g_head{nullptr};

void thing_ref(Node*) {}
void thing_unref(Node*) {}

SIGRT_HOT_PATH Node* pop() {
  Node* n = g_head.load(std::memory_order_acquire);
  if (n == nullptr) {
    return new Node;  // NOLINT(sigrt-hotpath-alloc)
  }
  g_head.store(n->next, std::memory_order_release);
  // A mention of std::function or operator new in a comment must not fire.
  return n;
}

void use() {
  Node* n = pop();
  thing_ref(n);
  thing_unref(n);
}
