// Violating fixture: the SBO buffer was grown to 128 without bumping the
// recorded bound in sigrt_lint.toml.
#pragma once
#include <cstddef>

struct InlineFn {
  static constexpr std::size_t kInlineBytes = 128;
};
