// Violating fixture: allocation and type-erasure inside SIGRT_HOT_PATH
// bodies, with no NOLINT suppression.
#include <functional>
#include <memory>

#define SIGRT_HOT_PATH

SIGRT_HOT_PATH int* hot_alloc() {
  return new int(7);  // error: operator new on the hot path
}

SIGRT_HOT_PATH int hot_erase(int x) {
  std::function<int()> f = [x] { return x; };  // error: std::function
  return f();
}

SIGRT_HOT_PATH std::unique_ptr<int> hot_make() {
  return std::make_unique<int>(3);  // error: make_unique
}

// Cold functions may allocate freely: must NOT fire.
int* cold_alloc() { return new int(9); }
