// Violating fixture: a retain without its matching release.  The manifest
// baseline for this file is 0 (counting the two definitions), so the extra
// thing_ref call shifts the delta to -1 and fails.
struct Node {};

void thing_ref(Node*) {}
void thing_unref(Node*) {}

Node g_node;

void leak() {
  thing_ref(&g_node);
  // ... early return forgot thing_unref(&g_node)
}
