// No manifest entry at all for this file -> error.
#include <atomic>

std::atomic<int> g_count{0};

void bump() { g_count.fetch_add(1, std::memory_order_relaxed); }
