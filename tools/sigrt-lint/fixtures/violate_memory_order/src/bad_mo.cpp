// Violating fixture: the manifest records ONE acquire site for this file;
// a second one was added without re-deriving the protocol.  A third site
// in a file the manifest has never seen also fires (unmanifested file).
#include <atomic>

std::atomic<int> g_flag{0};

int read_twice() {
  int a = g_flag.load(std::memory_order_acquire);
  int b = g_flag.load(std::memory_order_acquire);  // unrecorded site
  return a + b;
}
